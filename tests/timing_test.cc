/**
 * @file
 * Static pipeline-timing analyzer tests: seeded single-hazard images,
 * exact loop bounds, the full-matrix static/dynamic cross-validation
 * gate, and a golden timing sweep.
 *
 * The seeded-hazard tests hand-assemble small images that each contain
 * exactly one pipeline hazard of one kind — a load-use interlock, a
 * math-unit busy stall, an unfilled branch delay slot, a taken-branch
 * fetch refill — and require exactly one tim-* note with the right
 * code, location, and stall bounds: the analyzer's precision contract.
 *
 * The gate test analyzes and *runs* every workload under all five
 * paper variants at opt 0-2 (225 units) and requires the per-PC
 * dynamic interlocks to fall inside the static classification
 * everywhere, the per-category totals and bubble counts to match the
 * machine's counters exactly, and the whole-program bounds to bracket
 * baseCycles() — zero findings tolerated.
 *
 * The golden sweep pins the timing summary (hazard-site counts, stall
 * bounds, loop classification, program bounds) and the scheduler
 * feedback for the smoke matrix against
 * tests/golden/timing_golden.json. Regenerate after an *intended*
 * codegen or analyzer change:
 *
 *     build/tests/timing_test --update-golden
 *
 * and review the diff like any other source change.
 */

#include <atomic>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/timing.hh"
#include "asm/assembler.hh"
#include "asm/parser.hh"
#include "core/sweep/sweep.hh"
#include "core/toolchain.hh"
#include "core/workloads.hh"
#include "mc/compiler.hh"
#include "sim/machine.hh"
#include "support/error.hh"
#include "support/json.hh"

using namespace d16sim;
using namespace d16sim::analysis;

namespace
{

bool updateGolden = false;

assem::Image
assemble(const isa::TargetInfo &t, std::string_view src)
{
    assem::Assembler as(t);
    as.add(assem::parseAsm(t, src));
    return as.link();
}

int
countCode(const verify::DiagEngine &diags, std::string_view code)
{
    int n = 0;
    for (const verify::Diag &d : diags.diags())
        if (d.code == code)
            ++n;
    return n;
}

const verify::Diag *
findCode(const verify::DiagEngine &diags, std::string_view code)
{
    for (const verify::Diag &d : diags.diags())
        if (d.code == code)
            return &d;
    return nullptr;
}

std::string
readFile(const char *path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in) << "cannot read " << path;
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

/** Analyze a hand-built image with per-site notes enabled. */
struct Analyzed
{
    assem::Image img;
    ImageCfg cfg;
    verify::DiagEngine diags;
    TimingResult timing;
};

std::unique_ptr<Analyzed>
analyze(const isa::TargetInfo &t, std::string_view src,
        uint32_t busBytes = 4)
{
    auto a = std::make_unique<Analyzed>();
    a->img = assemble(t, src);
    a->cfg = buildCfg(a->img);
    TimingOptions opts;
    opts.busBytes = busBytes;
    opts.siteDiags = true;
    a->timing = analyzeTiming(a->cfg, a->diags, opts);
    return a;
}

/** Simulate `img` with a StallProbe and cross-validate `timing`
 *  against the run; returns the number of findings (0 = exact). */
int
runAndValidate(const Analyzed &a, verify::DiagEngine &diags)
{
    StallProbe probe;
    sim::Machine m(a.img);
    m.addProbe(&probe);
    m.run();
    return crossValidateTiming(a.timing, probe, m.stats(), diags);
}

} // namespace

// ----- seeded single-hazard images ------------------------------------

TEST(SeededHazard, LoadUse)
{
    // The add consumes r3 in the load delay: exactly one guaranteed
    // one-cycle load-use interlock, and nothing else.
    auto a = analyze(isa::TargetInfo::dlxe(), R"(
main:
    ld r3, 0(gp)
    add r4, r3, r3
    mvi r2, 0
    trap 5
    .data
w:  .word 0
)");
    EXPECT_EQ(countCode(a->diags, "tim-load-use"), 1);
    EXPECT_EQ(a->diags.notes(), 1);
    EXPECT_EQ(a->diags.failures(), 0);
    const verify::Diag *d = findCode(a->diags, "tim-load-use");
    ASSERT_NE(d, nullptr);
    EXPECT_TRUE(d->hasAddr);
    EXPECT_EQ(d->addr, a->img.symbol("main") + 4);  // the add

    const int site = a->cfg.insnAt(d->addr);
    ASSERT_GE(site, 0);
    const SiteTiming &s = a->timing.sites[site];
    EXPECT_EQ(s.stallLo, 1);
    EXPECT_EQ(s.stallHi, 1);
    EXPECT_TRUE(s.loadUse);
    EXPECT_TRUE(s.guaranteedLoad);
    EXPECT_FALSE(s.fpBusy);
    EXPECT_TRUE(s.precise());

    verify::DiagEngine xval;
    EXPECT_EQ(runAndValidate(*a, xval), 0);
}

TEST(SeededHazard, FpBusy)
{
    // The add.df consumes the multiply's result three cycles early:
    // exactly one guaranteed math-unit busy stall. The mvi spacer
    // keeps the conversion latency (2) out of the multiply's issue.
    auto a = analyze(isa::TargetInfo::dlxe(), R"(
main:
    mvi r2, 3
    mif.l f2, r2
    si2df f2, f2
    mvi r5, 0
    mul.df f3, f2, f2
    add.df f4, f3, f3
    mvi r2, 0
    trap 5
)");
    EXPECT_EQ(countCode(a->diags, "tim-fp-busy"), 1);
    EXPECT_EQ(a->diags.notes(), 1);
    EXPECT_EQ(a->diags.failures(), 0);
    const verify::Diag *d = findCode(a->diags, "tim-fp-busy");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->addr, a->img.symbol("main") + 5 * 4);  // the add.df

    const int site = a->cfg.insnAt(d->addr);
    ASSERT_GE(site, 0);
    const SiteTiming &s = a->timing.sites[site];
    EXPECT_EQ(s.stallLo, 3);  // mul latency 4, one cycle apart
    EXPECT_EQ(s.stallHi, 3);
    EXPECT_TRUE(s.fpBusy);
    EXPECT_TRUE(s.guaranteedFp);
    EXPECT_FALSE(s.loadUse);

    verify::DiagEngine xval;
    EXPECT_EQ(runAndValidate(*a, xval), 0);
}

TEST(SeededHazard, BranchBubble)
{
    // An unfilled delay slot behind the br: exactly one branch-bubble
    // note. The wide fetch bus keeps the taken branch inside one
    // fetch block so no refill note can co-occur.
    auto a = analyze(isa::TargetInfo::dlxe(), R"(
main:
    br end
    nop
end:
    mvi r2, 0
    trap 5
)",
                     /*busBytes=*/64);
    EXPECT_EQ(countCode(a->diags, "tim-branch-bubble"), 1);
    EXPECT_EQ(a->diags.notes(), 1);
    EXPECT_EQ(a->diags.failures(), 0);
    const verify::Diag *d = findCode(a->diags, "tim-branch-bubble");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->addr, a->img.symbol("main") + 4);  // the slot nop
    EXPECT_EQ(a->timing.bubbleSites, 1);

    // The dynamic taxonomy agrees: the machine counts exactly one
    // branch bubble for the run.
    sim::Machine m(a->img);
    m.run();
    EXPECT_EQ(m.stats().branchBubbles, 1u);

    verify::DiagEngine xval;
    EXPECT_EQ(runAndValidate(*a, xval), 0);
}

TEST(SeededHazard, FetchRefill)
{
    // The taken br leaves the 4-byte fetch block of its (filled)
    // delay slot: exactly one fetch-refill note, no bubble.
    auto a = analyze(isa::TargetInfo::dlxe(), R"(
main:
    br end
    mvi r5, 1
end:
    mvi r2, 0
    trap 5
)");
    EXPECT_EQ(countCode(a->diags, "tim-fetch-refill"), 1);
    EXPECT_EQ(a->diags.notes(), 1);
    EXPECT_EQ(a->diags.failures(), 0);
    const verify::Diag *d = findCode(a->diags, "tim-fetch-refill");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->addr, a->img.symbol("main"));  // the branch itself
    EXPECT_EQ(a->timing.bubbleSites, 0);

    verify::DiagEngine xval;
    EXPECT_EQ(runAndValidate(*a, xval), 0);
}

// ----- loop bounds ----------------------------------------------------

TEST(Bounds, BoundedCountdownLoop)
{
    // A provable five-trip countdown self-loop: the worst-case bound
    // is exact (equals the run's base cycles), the best case is the
    // one-trip path below it.
    auto a = analyze(isa::TargetInfo::dlxe(), R"(
main:
    mvi r3, 5
loop:
    subi r3, r3, 1
    bnz r3, loop
    mvi r6, 0
    mvi r2, 0
    trap 5
)");
    EXPECT_EQ(a->timing.boundedLoops, 1);
    EXPECT_EQ(a->timing.unboundedLoops, 0);

    sim::Machine m(a->img);
    m.run();
    const auto base = static_cast<int64_t>(m.stats().baseCycles());
    EXPECT_EQ(base, 18);  // 1 + 5 * 3 + 2, no interlocks
    EXPECT_EQ(a->timing.worstCycles, base);
    EXPECT_LE(a->timing.bestCycles, base);
    EXPECT_GT(a->timing.bestCycles, 0);

    verify::DiagEngine xval;
    EXPECT_EQ(runAndValidate(*a, xval), 0);
}

TEST(Bounds, UnprovableLoopIsUnbounded)
{
    // The counter comes from memory, not an immediate: no trip bound
    // may be claimed.
    auto a = analyze(isa::TargetInfo::dlxe(), R"(
main:
    ld r3, 0(gp)
    mvi r5, 0
loop:
    subi r3, r3, 1
    bnz r3, loop
    mvi r6, 0
    mvi r2, 0
    trap 5
    .data
n:  .word 3
)");
    EXPECT_EQ(a->timing.boundedLoops, 0);
    EXPECT_EQ(a->timing.unboundedLoops, 1);
    EXPECT_EQ(a->timing.worstCycles, -1);

    verify::DiagEngine xval;
    EXPECT_EQ(runAndValidate(*a, xval), 0);
}

// ----- the full-matrix cross-validation gate --------------------------

TEST(Gate, FullMatrixCrossValidation)
{
    // Every workload x every paper variant x opt 0-2: the static
    // classification must bracket the dynamic per-PC interlocks
    // everywhere, the totals and bubble taxonomy must match exactly,
    // and the program bounds must bracket baseCycles(). Any finding
    // is a bug in the analyzer or the machine.
    struct Job
    {
        const core::Workload *workload;
        mc::CompileOptions opts;
        std::string name;
    };
    std::vector<Job> jobs;
    for (const core::Workload &w : core::workloadSuite())
        for (const auto &[vname, vopts] : core::sweep::paperVariants())
            for (int lvl = 0; lvl <= 2; ++lvl) {
                Job j{&w, vopts, w.name + "|" + vname + "|O" +
                                     std::to_string(lvl)};
                j.opts.optLevel = lvl;
                jobs.push_back(std::move(j));
            }

    std::atomic<size_t> next{0};
    std::mutex mu;
    std::vector<std::string> failures;
    auto worker = [&] {
        for (size_t i = next.fetch_add(1); i < jobs.size();
             i = next.fetch_add(1)) {
            const Job &j = jobs[i];
            std::string failure;
            try {
                const assem::Image img =
                    core::build(j.workload->source, j.opts);
                const ImageCfg cfg = buildCfg(img);
                verify::DiagEngine diags;
                diags.setUnit(j.name);
                TimingOptions topts;
                topts.siteDiags = false;
                const TimingResult timing =
                    analyzeTiming(cfg, diags, topts);

                StallProbe probe;
                sim::Machine m(img);
                m.addProbe(&probe);
                m.run();
                const int findings = crossValidateTiming(
                    timing, probe, m.stats(), diags);
                if (findings != 0 || diags.failures() != 0) {
                    std::ostringstream os;
                    os << j.name << ": " << findings << " findings\n";
                    diags.renderText(os);
                    failure = os.str();
                }
            } catch (const Error &e) {
                failure = j.name + ": exception: " + e.what();
            }
            if (!failure.empty()) {
                std::lock_guard<std::mutex> lock(mu);
                failures.push_back(std::move(failure));
            }
        }
    };
    const unsigned hw = std::max(2u, std::thread::hardware_concurrency());
    std::vector<std::thread> pool;
    for (unsigned t = 1; t < hw; ++t)
        pool.emplace_back(worker);
    worker();
    for (std::thread &t : pool)
        t.join();

    for (const std::string &f : failures)
        ADD_FAILURE() << f;
    EXPECT_EQ(failures.size(), 0u)
        << failures.size() << " of " << jobs.size()
        << " units failed timing cross-validation";
}

// ----- golden timing sweep --------------------------------------------

namespace
{

Json
timingUnitJson(const core::Workload &w, const mc::CompileOptions &opts)
{
    const assem::Image img = core::build(w.source, opts);
    const ImageCfg cfg = buildCfg(img);
    verify::DiagEngine diags;
    TimingOptions topts;
    topts.siteDiags = false;
    const TimingResult timing = analyzeTiming(cfg, diags, topts);
    const mc::SchedFeedback fb = schedFeedback(timing, diags);

    Json j = Json::object();
    std::ostringstream os;
    timing.renderJson(os);
    j["timing"] = Json::parse(os.str());
    Json f = Json::object();
    f["residualLoadUse"] = Json(int64_t{fb.loadUseSites});
    f["avoidableLoadUse"] = Json(int64_t{fb.avoidableSites});
    j["schedFeedback"] = f;
    return j;
}

} // namespace

TEST(Golden, TimingSweep)
{
    Json units = Json::object();
    for (const core::sweep::JobSpec &j : core::sweep::smokeBaseMatrix()) {
        const std::string key =
            j.workload + "|" + core::sweep::variantKey(j.opts);
        units[key] = timingUnitJson(core::workload(j.workload), j.opts);
    }
    Json doc = Json::object();
    doc["schema"] = "d16-timing-golden-v1";
    doc["units"] = std::move(units);

    if (updateGolden) {
        std::ofstream out(D16SIM_TIMING_GOLDEN_JSON);
        ASSERT_TRUE(out) << "cannot write " << D16SIM_TIMING_GOLDEN_JSON;
        out << doc.dump(2) << "\n";
        std::cout << "timing_test: regenerated "
                  << D16SIM_TIMING_GOLDEN_JSON << " ("
                  << doc["units"].size() << " units)\n";
        return;
    }

    const Json golden = Json::parse(readFile(D16SIM_TIMING_GOLDEN_JSON));
    const Json *gu = golden.find("units");
    ASSERT_NE(gu, nullptr) << "golden file has no units section";
    for (const auto &[key, value] : doc["units"].members()) {
        const Json *g = gu->find(key);
        ASSERT_NE(g, nullptr) << "unit " << key << " missing from golden "
                              << "(rerun with --update-golden?)";
        EXPECT_EQ(value.dump(2), g->dump(2))
            << "timing summary diverged for " << key
            << " (rerun with --update-golden if the change is intended)";
    }
    EXPECT_EQ(doc.dump(2), golden.dump(2))
        << "timing golden diverged (stale or extra units?)";
}

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--update-golden") == 0)
            updateGolden = true;
    return RUN_ALL_TESTS();
}
