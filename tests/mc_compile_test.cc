/**
 * @file
 * End-to-end compiler tests: MiniC source -> compile -> assemble ->
 * simulate, on every machine variant of the paper. The central
 * property: all five variants produce identical program output, while
 * static size and path length respond to the ISA knobs in the
 * direction the paper reports.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "mc/compiler.hh"
#include "sim/machine.hh"
#include "support/error.hh"

namespace
{

using namespace d16sim;
using namespace d16sim::mc;

struct RunResult
{
    std::string output;
    int exitStatus = 0;
    uint64_t pathLength = 0;
    uint32_t sizeBytes = 0;
    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t interlocks = 0;
};

RunResult
compileAndRun(std::string_view src, const CompileOptions &opts)
{
    CompileResult comp = compile(src, opts);
    assem::Assembler as(opts.target());
    as.add(std::move(comp.items));
    const assem::Image img = as.link();
    sim::Machine m(img);
    RunResult r;
    r.exitStatus = m.run();
    r.output = m.output();
    r.pathLength = m.stats().instructions;
    r.sizeBytes = img.sizeBytes();
    r.loads = m.stats().loads;
    r.stores = m.stats().stores;
    r.interlocks = m.stats().interlocks();
    return r;
}

const CompileOptions kVariants[] = {
    CompileOptions::d16(),
    CompileOptions::dlxe(16, false),
    CompileOptions::dlxe(16, true),
    CompileOptions::dlxe(32, false),
    CompileOptions::dlxe(32, true),
};

/** Run on all five variants and require identical output. */
std::vector<RunResult>
runEverywhere(std::string_view src, const std::string &expected)
{
    std::vector<RunResult> results;
    for (const CompileOptions &opts : kVariants) {
        SCOPED_TRACE(opts.name());
        results.push_back(compileAndRun(src, opts));
        EXPECT_EQ(results.back().output, expected) << opts.name();
    }
    return results;
}

TEST(Compile, ReturnValue)
{
    const auto r = compileAndRun("int main() { return 42; }\n",
                                 CompileOptions::d16());
    EXPECT_EQ(r.exitStatus, 42);
}

TEST(Compile, HelloPrint)
{
    runEverywhere(R"(
int main() {
    print_str("hello ");
    print_int(-7);
    print_char('\n');
    return 0;
}
)",
                  "hello -7\n");
}

TEST(Compile, ArithmeticMix)
{
    runEverywhere(R"(
int main() {
    int a = 100, b = 7;
    print_int(a + b); print_char(' ');
    print_int(a - b); print_char(' ');
    print_int(a * b); print_char(' ');
    print_int(a / b); print_char(' ');
    print_int(a % b); print_char(' ');
    print_int(-a / b); print_char(' ');
    print_int(-a % b); print_char(' ');
    print_int(a << 3); print_char(' ');
    print_int(a >> 2); print_char(' ');
    print_int((a ^ b) & 0x3f); print_char(' ');
    print_int(a | b);
    return 0;
}
)",
                  "107 93 700 14 2 -14 -2 800 25 35 103");
}

TEST(Compile, UnsignedSemantics)
{
    runEverywhere(R"(
int main() {
    unsigned u = 3000000000u;
    unsigned v = 7;
    print_uint(u / v); print_char(' ');
    print_uint(u % v); print_char(' ');
    print_uint(u >> 4); print_char(' ');
    print_int(u > v);  print_char(' ');
    int s = -1;
    unsigned w = s;          /* 0xffffffff */
    print_int(w > u);
    return 0;
}
)",
                  "428571428 4 187500000 1 1");
}

TEST(Compile, DivisionByConstants)
{
    runEverywhere(R"(
int main() {
    int i;
    for (i = -20; i <= 20; i += 7) {
        print_int(i / 4); print_char(',');
        print_int(i % 4); print_char(' ');
    }
    return 0;
}
)",
                  "-5,0 -3,-1 -1,-2 0,1 2,0 3,3 ");
}

TEST(Compile, LoopsAndConditions)
{
    runEverywhere(R"(
int main() {
    int s = 0, i = 0;
    while (i < 10) { s += i; i++; }
    print_int(s); print_char(' ');
    s = 0;
    do { s++; } while (s < 5);
    print_int(s); print_char(' ');
    int j, t = 0;
    for (j = 100; j > 0; j -= 10)
        if (j % 20 == 0) t += j; else t -= j;
    print_int(t);
    return 0;
}
)",
                  "45 5 50");
}

TEST(Compile, ShortCircuit)
{
    runEverywhere(R"(
int calls;
int touch(int v) { calls++; return v; }
int main() {
    calls = 0;
    if (touch(0) && touch(1)) print_char('a');
    print_int(calls); print_char(' ');
    calls = 0;
    if (touch(1) || touch(1)) print_char('b');
    print_int(calls); print_char(' ');
    print_int(!5); print_int(!0);
    return 0;
}
)",
                  "1 b1 01");
}

TEST(Compile, RecursionFibonacci)
{
    runEverywhere(R"(
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
int main() { print_int(fib(15)); return 0; }
)",
                  "610");
}

TEST(Compile, ArraysAndPointers)
{
    runEverywhere(R"(
int data[10];
int main() {
    int i;
    for (i = 0; i < 10; i++) data[i] = i * i;
    int *p = data;
    int sum = 0;
    while (p < data + 10) sum += *p++;
    print_int(sum); print_char(' ');
    p = &data[9];
    print_int(*p); print_char(' ');
    print_int(p - data);
    return 0;
}
)",
                  "285 81 9");
}

TEST(Compile, CharAndStrings)
{
    runEverywhere(R"(
char msg[16] = "abcdef";
int strlen_(char *s) {
    int n = 0;
    while (s[n]) n++;
    return n;
}
int main() {
    print_int(strlen_(msg)); print_char(' ');
    msg[2] = 'X';
    print_str(msg); print_char(' ');
    char c = 'a';
    c = c + 2;
    print_char(c);
    print_int(msg[1] == 'b');
    return 0;
}
)",
                  "6 abXdef c1");
}

TEST(Compile, Structs)
{
    runEverywhere(R"(
struct point { int x; int y; };
struct rect { struct point lo; struct point hi; char tag; };
struct rect r;
int area(struct rect *p) {
    return (p->hi.x - p->lo.x) * (p->hi.y - p->lo.y);
}
int main() {
    r.lo.x = 2; r.lo.y = 3; r.hi.x = 10; r.hi.y = 7;
    r.tag = 'R';
    print_int(area(&r)); print_char(' ');
    struct rect copy = r;
    copy.lo.x = 0;
    print_int(area(&copy)); print_char(' ');
    print_int(r.lo.x); print_char(r.tag);
    return 0;
}
)",
                  "32 40 2R");
}

TEST(Compile, GlobalInitializers)
{
    runEverywhere(R"(
int weights[5] = { 2, 4, 6, 8, 10 };
int scale = 3;
char *name = "table";
int main() {
    int i, s = 0;
    for (i = 0; i < 5; i++) s += weights[i] * scale;
    print_int(s); print_char(' ');
    print_str(name);
    return 0;
}
)",
                  "90 table");
}

TEST(Compile, DoubleArithmetic)
{
    runEverywhere(R"(
int main() {
    double a = 1.5, b = 0.25;
    print_f64(a + b); print_char(' ');
    print_f64(a * b); print_char(' ');
    print_f64(a / b); print_char(' ');
    print_f64(-b); print_char(' ');
    print_int(a > b); print_int(a == 1.5);
    return 0;
}
)",
                  "1.7500 0.3750 6.0000 -0.2500 11");
}

TEST(Compile, FloatVsDouble)
{
    runEverywhere(R"(
int main() {
    float f = 2.5f;
    double d = f;
    d = d + 0.125;
    f = d;
    print_f64(f); print_char(' ');
    int i = f;
    print_int(i); print_char(' ');
    double e = i;
    print_f64(e / 2.0);
    return 0;
}
)",
                  "2.6250 2 1.0000");
}

TEST(Compile, NewtonSqrt)
{
    // Iterative FP with compares and conversions.
    runEverywhere(R"(
double mysqrt(double x) {
    double g = x / 2.0;
    int i;
    for (i = 0; i < 30; i++)
        g = (g + x / g) / 2.0;
    return g;
}
int main() {
    print_f64(mysqrt(2.0)); print_char(' ');
    print_f64(mysqrt(81.0));
    return 0;
}
)",
                  "1.4142 9.0000");
}

TEST(Compile, AllocBuiltin)
{
    runEverywhere(R"(
int main() {
    int *a = (int *)alloc(10 * sizeof(int));
    int i;
    for (i = 0; i < 10; i++) a[i] = i + 1;
    int s = 0;
    for (i = 0; i < 10; i++) s += a[i];
    print_int(s);
    return 0;
}
)",
                  "55");
}

TEST(Compile, ConditionalExprAndCompound)
{
    runEverywhere(R"(
int main() {
    int a = 5, b = 9;
    int m = a > b ? a : b;
    print_int(m); print_char(' ');
    a <<= 2; a |= 1; a ^= 3; a &= 0xff; a -= 2;
    print_int(a); print_char(' ');
    int arr[3] = { 1, 2, 3 };
    arr[1] += 10;
    print_int(arr[0] + arr[1] + arr[2]);
    return 0;
}
)",
                  "9 20 16");
}

TEST(Compile, ManyLocalsForcesSpills)
{
    // 20 simultaneously-live sums exceed D16's allocatable registers;
    // correctness must survive spilling.
    runEverywhere(R"(
int main() {
    int a0=1,a1=2,a2=3,a3=4,a4=5,a5=6,a6=7,a7=8,a8=9,a9=10;
    int b0=11,b1=12,b2=13,b3=14,b4=15,b5=16,b6=17,b7=18,b8=19,b9=20;
    int i;
    for (i = 0; i < 3; i++) {
        a0+=b9; a1+=b8; a2+=b7; a3+=b6; a4+=b5;
        a5+=b4; a6+=b3; a7+=b2; a8+=b1; a9+=b0;
        b0+=a0; b1+=a1; b2+=a2; b3+=a3; b4+=a4;
        b5+=a5; b6+=a6; b7+=a7; b8+=a8; b9+=a9;
    }
    print_int(a0+a1+a2+a3+a4+a5+a6+a7+a8+a9
              +b0+b1+b2+b3+b4+b5+b6+b7+b8+b9);
    return 0;
}
)",
                  "3970");
}

TEST(Compile, StackArguments)
{
    // More arguments than D16's four argument registers.
    runEverywhere(R"(
int sum8(int a, int b, int c, int d, int e, int f, int g, int h) {
    return a + 2*b + 3*c + 4*d + 5*e + 6*f + 7*g + 8*h;
}
int main() {
    print_int(sum8(1, 2, 3, 4, 5, 6, 7, 8));
    return 0;
}
)",
                  "204");
}

TEST(Compile, DensityOrdering)
{
    // The headline static-size relation: D16 binaries are smaller;
    // DLXe with more registers/three-address is smaller than the
    // restricted variants (paper Table 6 ordering, on average).
    const char *src = R"(
int work(int n) {
    int i, s = 0;
    for (i = 0; i < n; i++) {
        s += i * 3;
        s ^= s >> 2;
        if (s > 100000) s -= 100000;
    }
    return s;
}
int main() { print_int(work(50)); return 0; }
)";
    const auto results = runEverywhere(src, compileAndRun(
        src, CompileOptions::dlxe()).output);
    const auto &d16 = results[0];
    const auto &dlxeFull = results[4];
    EXPECT_LT(d16.sizeBytes, dlxeFull.sizeBytes);
    // Path length: DLXe no longer than D16.
    EXPECT_LE(dlxeFull.pathLength, d16.pathLength);
}

TEST(Compile, RegisterRestrictionCostsDataTraffic)
{
    // Paper Table 3: a 16-register DLXe moves more data than the
    // 32-register DLXe on register-hungry code.
    const char *src = R"(
int main() {
    int a0=1,a1=2,a2=3,a3=4,a4=5,a5=6,a6=7,a7=8,a8=9,a9=10;
    int b0=11,b1=12,b2=13,b3=14,b4=15,b5=16,b6=17,b7=18;
    int i, s = 0;
    for (i = 0; i < 50; i++) {
        s += a0+a1+a2+a3+a4+a5+a6+a7+a8+a9;
        s += b0+b1+b2+b3+b4+b5+b6+b7;
        a0^=s; a1+=a0; a2|=1; a3+=a2; a4+=s; a5^=a4; a6+=1;
        a7+=a6; a8^=s; a9+=a8;
        b0+=1; b1+=b0; b2+=b1; b3^=s; b4+=b3; b5+=1; b6+=b5; b7^=s;
    }
    print_int(s);
    return 0;
}
)";
    const auto r32 = compileAndRun(src, CompileOptions::dlxe(32, true));
    const auto r16 = compileAndRun(src, CompileOptions::dlxe(16, true));
    EXPECT_EQ(r32.output, r16.output);
    EXPECT_GE(r16.loads + r16.stores, r32.loads + r32.stores);
}

TEST(Compile, OptLevelsAgree)
{
    const char *src = R"(
int main() {
    int i, s = 0;
    for (i = 1; i <= 12; i++) s += i * i;
    print_int(s);
    return 0;
}
)";
    for (const CompileOptions &base : kVariants) {
        for (int level = 0; level <= 2; ++level) {
            CompileOptions opts = base;
            opts.optLevel = level;
            const auto r = compileAndRun(src, opts);
            EXPECT_EQ(r.output, "650") << base.name() << " O" << level;
        }
    }
}

TEST(Compile, OptimizationReducesPathLength)
{
    const char *src = R"(
int main() {
    int i, s = 0;
    int limit = 20 * 5;
    for (i = 0; i < limit; i++)
        s += 7 * 3 + i;     /* constant-foldable subexpression */
    print_int(s);
    return 0;
}
)";
    CompileOptions o0 = CompileOptions::dlxe();
    o0.optLevel = 0;
    CompileOptions o2 = CompileOptions::dlxe();
    const auto r0 = compileAndRun(src, o0);
    const auto r2 = compileAndRun(src, o2);
    EXPECT_EQ(r0.output, r2.output);
    EXPECT_LT(r2.pathLength, r0.pathLength);
}

TEST(Compile, SchedulingReducesInterlocks)
{
    const char *src = R"(
int v[50];
int main() {
    int i, s = 0;
    for (i = 0; i < 50; i++) v[i] = i;
    for (i = 0; i < 50; i++) s += v[i];
    print_int(s);
    return 0;
}
)";
    CompileOptions o1 = CompileOptions::dlxe();
    o1.optLevel = 1;  // no scheduling
    CompileOptions o2 = CompileOptions::dlxe();
    const auto r1 = compileAndRun(src, o1);
    const auto r2 = compileAndRun(src, o2);
    EXPECT_EQ(r1.output, r2.output);
    EXPECT_LE(r2.interlocks, r1.interlocks);
}

TEST(Compile, NarrowImmediateAblation)
{
    // Extension ablation: restricting DLXe to D16 immediate widths
    // costs instructions but not correctness.
    const char *src = R"(
int main() {
    int s = 0, i;
    for (i = 0; i < 10; i++) s += 12345 + i;
    print_int(s);
    return 0;
}
)";
    CompileOptions narrow = CompileOptions::dlxe();
    narrow.narrowImmediates = true;
    const auto wide = compileAndRun(src, CompileOptions::dlxe());
    const auto slim = compileAndRun(src, narrow);
    EXPECT_EQ(wide.output, slim.output);
    EXPECT_GE(slim.pathLength, wide.pathLength);
}

/** Run on every variant at every opt level and require one output. */
void
runEveryConfig(std::string_view src, const std::string &expected)
{
    for (const CompileOptions &base : kVariants) {
        for (int level = 0; level <= 2; ++level) {
            CompileOptions opts = base;
            opts.optLevel = level;
            const auto r = compileAndRun(src, opts);
            EXPECT_EQ(r.output, expected)
                << base.name() << " O" << level;
        }
    }
}

TEST(Compile, DivRemEdgeCases)
{
    // Round-toward-zero division and its remainder at the signed
    // extremes.  INT32_MIN is spelled as an expression because the
    // literal 2147483648 does not fit in int.  INT32_MIN / -1 is a
    // trap on every variant and is exercised separately below.
    runEveryConfig(R"(
int id(int x) { return x; }
int main() {
    int m = -2147483647 - 1;
    print_int(m / 3); print_char(' ');
    print_int(m % 3); print_char(' ');
    print_int(m / -3); print_char(' ');
    print_int(m % -3); print_char('\n');
    print_int(-7 / 2); print_char(' ');
    print_int(-7 % 2); print_char(' ');
    print_int(7 / -2); print_char(' ');
    print_int(7 % -2); print_char(' ');
    print_int(-7 / -2); print_char(' ');
    print_int(-7 % -2); print_char('\n');
    print_int(5 % -1); print_char(' ');
    print_int(-5 % -1); print_char(' ');
    print_int((m + 1) % -1); print_char('\n');
    /* Folded and runtime divisions must agree. */
    int d = id(3);
    print_int(m / 3 == m / d); print_char(' ');
    print_int(m % -3 == m % -d); print_char(' ');
    print_int(-7 / 2 == -7 / id(2)); print_char('\n');
    return 0;
}
)",
                   "-715827882 -2 715827882 -2\n"
                   "-3 -1 -3 1 3 -1\n"
                   "0 0 0\n"
                   "1 1 1\n");
}

TEST(Compile, DivRemOverflowAndZeroAgreeAcrossVariants)
{
    // INT32_MIN / -1 and division by zero are outside the oracle's
    // pinned semantics (it discards such programs), but the runtime
    // library still defines them: zero divisors yield quotient 0 and
    // remainder = dividend, and the restoring divider wraps on
    // overflow.  All fifteen build configurations must agree with
    // each other bit-for-bit.  The constant folder must never fold
    // these cases (it would have to invent a value).
    const char *src = R"(
int id(int x) { return x; }
int main() {
    int m = -2147483647 - 1;
    print_int(m / id(-1)); print_char(' ');
    print_int(m % id(-1)); print_char(' ');
    print_int(id(5) / id(0)); print_char(' ');
    print_int(id(5) % id(0)); print_char(' ');
    print_int(id(-5) / id(0)); print_char(' ');
    print_int(id(-5) % id(0)); print_char('\n');
    return 0;
}
)";
    std::string first;
    for (const CompileOptions &base : kVariants) {
        for (int level = 0; level <= 2; ++level) {
            CompileOptions opts = base;
            opts.optLevel = level;
            const auto r = compileAndRun(src, opts);
            if (first.empty())
                first = r.output;
            EXPECT_EQ(r.output, first)
                << base.name() << " O" << level;
        }
    }
    // The defined-by-the-library zero-divisor results.
    EXPECT_NE(first.find("0 5 0 -5"), std::string::npos) << first;
}

TEST(Compile, ShiftCountSemantics)
{
    // Shift counts are masked to the low five bits on every variant,
    // for literal counts (folded by the front end) and for runtime
    // counts alike.  The program compares the folded form against the
    // same shift through an opaque count, so any fold/runtime skew
    // shows up as a 0.
    runEveryConfig(R"(
int id(int x) { return x; }
int main() {
    print_int(1 << 32); print_char(' ');
    print_int(1 << 33); print_char(' ');
    print_int(-8 >> 33); print_char(' ');
    print_int(1 << -1); print_char(' ');
    print_int(-2147483647 - 1 >> 31); print_char('\n');
    unsigned u = 2147483648u;
    print_uint(u >> 32); print_char(' ');
    print_uint(u >> 63); print_char(' ');
    print_uint(u >> -1); print_char('\n');
    print_int((5 << 33) == (5 << id(33))); print_char(' ');
    print_int((-96 >> 34) == (-96 >> id(34))); print_char(' ');
    print_int((7 << -3) == (7 << id(-3))); print_char(' ');
    print_int((int)(u >> 63) == (int)(u >> id(63)));
    print_char('\n');
    return 0;
}
)",
                   "1 2 -4 -2147483648 -1\n"
                   "2147483648 1 1\n"
                   "1 1 1 1\n");
}

} // namespace
