/**
 * @file
 * Differential property tests.
 *
 * A deterministic program generator produces MiniC programs mixing
 * arithmetic, control flow, arrays, and calls; every program must
 * produce identical output on all five machine variants (the paper's
 * "identical function, different encoding" premise), at every
 * optimization level. Cache and fetch-buffer invariants are also
 * property-checked across parameter sweeps.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/toolchain.hh"
#include "mem/cache.hh"

namespace
{

using namespace d16sim;
using namespace d16sim::core;
using mc::CompileOptions;

/** Tiny deterministic generator (xorshift) for program synthesis. */
struct Gen
{
    uint32_t state;
    explicit Gen(uint32_t seed) : state(seed * 2654435761u + 1) {}

    uint32_t
    next()
    {
        state ^= state << 13;
        state ^= state >> 17;
        state ^= state << 5;
        return state;
    }

    int range(int lo, int hi) { return lo + next() % (hi - lo + 1); }

    std::string
    var(int count)
    {
        return "v" + std::to_string(range(0, count - 1));
    }
};

/** Generate a deterministic MiniC program from a seed. */
std::string
generateProgram(uint32_t seed)
{
    Gen g(seed);
    std::ostringstream os;
    const int nVars = g.range(4, 8);

    os << "int arr[16];\n";
    os << "int helper(int a, int b) { return a * 3 - b + (a & b); }\n";
    os << "int main() {\n";
    for (int i = 0; i < nVars; ++i)
        os << "  int v" << i << " = " << g.range(-50, 200) << ";\n";
    os << "  int i;\n";
    os << "  for (i = 0; i < 16; i++) arr[i] = i * "
       << g.range(1, 9) << " - " << g.range(0, 30) << ";\n";

    const int nStmts = g.range(6, 14);
    for (int s = 0; s < nStmts; ++s) {
        switch (g.range(0, 5)) {
          case 0:
            os << "  " << g.var(nVars) << " += " << g.var(nVars)
               << " * " << g.range(2, 12) << ";\n";
            break;
          case 1:
            os << "  if (" << g.var(nVars) << " > " << g.range(-10, 60)
               << ") " << g.var(nVars) << " -= " << g.var(nVars)
               << "; else " << g.var(nVars) << " ^= "
               << g.range(1, 25500) << ";\n";
            break;
          case 2:
            os << "  for (i = 0; i < " << g.range(2, 9) << "; i++) "
               << g.var(nVars) << " += arr[i] >> "
               << g.range(0, 3) << ";\n";
            break;
          case 3:
            os << "  " << g.var(nVars) << " = helper(" << g.var(nVars)
               << ", " << g.var(nVars) << ");\n";
            break;
          case 4:
            os << "  " << g.var(nVars) << " = " << g.var(nVars)
               << (g.range(0, 1) ? " / " : " % ") << g.range(2, 13)
               << ";\n";
            break;
          default:
            os << "  arr[" << g.range(0, 15) << "] ^= "
               << g.var(nVars) << ";\n";
            break;
        }
    }
    os << "  int acc = 0;\n";
    for (int i = 0; i < nVars; ++i)
        os << "  acc = acc * 31 + v" << i << ";\n";
    os << "  for (i = 0; i < 16; i++) acc = acc * 7 + arr[i];\n";
    os << "  print_int(acc);\n  return 0;\n}\n";
    return os.str();
}

class GeneratedPrograms : public ::testing::TestWithParam<uint32_t>
{};

TEST_P(GeneratedPrograms, AllVariantsAgree)
{
    const std::string src = generateProgram(GetParam());
    SCOPED_TRACE(src);
    std::string reference;
    for (const auto &opts :
         {CompileOptions::d16(), CompileOptions::dlxe(16, false),
          CompileOptions::dlxe(16, true), CompileOptions::dlxe(32, false),
          CompileOptions::dlxe(32, true)}) {
        const auto m = buildAndRun(src, opts);
        if (reference.empty())
            reference = m.output;
        else
            EXPECT_EQ(m.output, reference) << opts.name();
    }
    EXPECT_FALSE(reference.empty());
}

TEST_P(GeneratedPrograms, OptLevelsAgree)
{
    const std::string src = generateProgram(GetParam() ^ 0xabcd1234u);
    std::string reference;
    for (int level = 0; level <= 2; ++level) {
        CompileOptions opts = CompileOptions::d16();
        opts.optLevel = level;
        const auto m = buildAndRun(src, opts);
        if (reference.empty())
            reference = m.output;
        else
            EXPECT_EQ(m.output, reference) << "O" << level;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratedPrograms,
                         ::testing::Range(1u, 25u));

// ---------------------------------------------------------------------
// Shift-count semantics
// ---------------------------------------------------------------------

TEST(ShiftProperty, FoldedMatchesRuntime)
{
    // Shift counts are masked to five bits.  A literal count is
    // folded by the front end and optimizer; the same count routed
    // through an opaque call reaches the machine's shifter.  Both
    // paths must agree for every count, including counts >= 32 and
    // negative counts.  The generated program prints one '1' per
    // agreeing triple (shl, sar, unsigned shr).
    Gen g(0x5eed5u);
    std::ostringstream os;
    os << "int id(int x) { return x; }\n";
    os << "int main() {\n";
    std::string expected;
    const int counts[] = {0, 1, 5, 31, 32, 33, 63, 64, 100, -1, -31,
                          -32, -100};
    for (const int k : counts) {
        const int v = g.range(-5000, 5000) * 131071;
        os << "  print_int((" << v << " << " << k << ") == (" << v
           << " << id(" << k << ")));\n";
        os << "  print_int((" << v << " >> " << k << ") == (" << v
           << " >> id(" << k << ")));\n";
        os << "  print_int(((unsigned)" << v << " >> " << k
           << ") == ((unsigned)" << v << " >> id(" << k << ")));\n";
        expected += "111";
    }
    os << "  return 0;\n}\n";

    for (const auto &opts :
         {CompileOptions::d16(), CompileOptions::dlxe(32, true)}) {
        for (int level = 0; level <= 2; ++level) {
            CompileOptions o = opts;
            o.optLevel = level;
            const auto m = buildAndRun(os.str(), o);
            EXPECT_EQ(m.output, expected)
                << opts.name() << " O" << level;
        }
    }
}

// ---------------------------------------------------------------------
// Cache model invariants
// ---------------------------------------------------------------------

class CacheSweep : public ::testing::TestWithParam<int>
{};

TEST_P(CacheSweep, AccountingInvariants)
{
    Gen g(static_cast<uint32_t>(GetParam()) * 7919u);
    mem::CacheConfig cfg;
    cfg.sizeBytes = 1u << g.range(10, 14);
    cfg.blockBytes = 1u << g.range(3, 6);
    cfg.subBlockBytes = std::min(cfg.blockBytes, 8u);
    cfg.assoc = 1u << g.range(0, 2);
    mem::Cache cache(cfg);

    for (int i = 0; i < 20000; ++i) {
        const uint32_t addr = (g.next() % (1u << 16)) & ~3u;
        cache.access(addr, 4, g.range(0, 3) == 0);
    }
    const auto &st = cache.stats();
    EXPECT_EQ(st.accesses(), 20000u);
    EXPECT_LE(st.readMisses, st.reads);
    EXPECT_LE(st.writeMisses, st.writes);
    // Words in >= one sub-block per allocate-miss.
    EXPECT_GE(st.wordsIn,
              st.misses() * (cfg.subBlockBytes / 4) / 2);
    // Write-backs cannot exceed what was ever brought in + written.
    EXPECT_LE(st.wordsOut, st.wordsIn + st.writes);
}

TEST_P(CacheSweep, FlushThenColdMissesEverything)
{
    mem::CacheConfig cfg;
    cfg.sizeBytes = 2048;
    cfg.blockBytes = 32;
    cfg.subBlockBytes = 8;
    mem::Cache cache(cfg);
    Gen g(static_cast<uint32_t>(GetParam()) + 17u);
    std::vector<uint32_t> addrs;
    for (int i = 0; i < 32; ++i)
        addrs.push_back((g.next() % 4096u) & ~31u);
    for (uint32_t a : addrs)
        cache.read(a, 4);
    cache.flush();
    const uint64_t missesBefore = cache.stats().readMisses;
    // Unique block addresses all miss after a flush.
    std::set<uint32_t> blocks;
    for (uint32_t a : addrs)
        blocks.insert(a / cfg.blockBytes);
    for (uint32_t b : blocks)
        cache.read(b * cfg.blockBytes, 4);
    EXPECT_EQ(cache.stats().readMisses - missesBefore, blocks.size());
}

INSTANTIATE_TEST_SUITE_P(Sweeps, CacheSweep, ::testing::Range(0, 12));

// ---------------------------------------------------------------------
// Fetch buffer invariants
// ---------------------------------------------------------------------

TEST(FetchBufferProperty, WiderBusNeverMoreRequests)
{
    const char *src = R"(
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main() { print_int(fib(12)); return 0; }
)";
    for (const auto &opts :
         {CompileOptions::d16(), CompileOptions::dlxe()}) {
        const auto img = build(src, opts);
        FetchBufferProbe fb4(4), fb8(8), fb16(16);
        const auto m = run(img, {&fb4, &fb8, &fb16});
        EXPECT_LE(fb8.requests(), fb4.requests()) << opts.name();
        EXPECT_LE(fb16.requests(), fb8.requests()) << opts.name();
        // No more requests than instructions; at least footprint/bus.
        EXPECT_LE(fb4.requests(), m.stats.instructions);
        EXPECT_GT(fb4.requests(), 0u);
    }
}

} // namespace
