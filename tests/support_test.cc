/**
 * @file
 * Unit tests for the support substrate (bits, strings, table, error).
 */

#include <gtest/gtest.h>

#include "support/bits.hh"
#include "support/error.hh"
#include "support/strings.hh"
#include "support/table.hh"

namespace
{

using namespace d16sim;

TEST(Bits, MaskBits)
{
    EXPECT_EQ(maskBits(0), 0u);
    EXPECT_EQ(maskBits(1), 1u);
    EXPECT_EQ(maskBits(5), 0x1fu);
    EXPECT_EQ(maskBits(16), 0xffffu);
    EXPECT_EQ(maskBits(32), 0xffffffffu);
}

TEST(Bits, ExtractInsert)
{
    EXPECT_EQ(bits(0xdeadbeef, 31, 28), 0xdu);
    EXPECT_EQ(bits(0xdeadbeef, 3, 0), 0xfu);
    EXPECT_EQ(bits(0xdeadbeef, 15, 8), 0xbeu);
    EXPECT_EQ(insertBits(0, 15, 8, 0xbe), 0xbe00u);
    EXPECT_EQ(insertBits(0xffffffff, 7, 4, 0), 0xffffff0fu);
    // Insert masks excess field bits.
    EXPECT_EQ(insertBits(0, 3, 0, 0x1ff), 0xfu);
}

TEST(Bits, SignExtend)
{
    EXPECT_EQ(signExtend(0x1ff, 9), -1);
    EXPECT_EQ(signExtend(0x0ff, 9), 255);
    EXPECT_EQ(signExtend(0x100, 9), -256);
    EXPECT_EQ(signExtend(0xffff, 16), -1);
    EXPECT_EQ(signExtend(0x7fff, 16), 32767);
}

TEST(Bits, Fits)
{
    EXPECT_TRUE(fitsSigned(-256, 9));
    EXPECT_TRUE(fitsSigned(255, 9));
    EXPECT_FALSE(fitsSigned(256, 9));
    EXPECT_FALSE(fitsSigned(-257, 9));
    EXPECT_TRUE(fitsUnsigned(31, 5));
    EXPECT_FALSE(fitsUnsigned(32, 5));
    EXPECT_FALSE(fitsUnsigned(-1, 5));
}

TEST(Bits, AlignHelpers)
{
    EXPECT_TRUE(isAligned(8, 4));
    EXPECT_FALSE(isAligned(6, 4));
    EXPECT_EQ(roundUp(5, 4), 8u);
    EXPECT_EQ(roundUp(8, 4), 8u);
    EXPECT_TRUE(isPowerOfTwo(1024));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(24));
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(4096), 12u);
}

TEST(Strings, Trim)
{
    EXPECT_EQ(trim("  abc  "), "abc");
    EXPECT_EQ(trim("abc"), "abc");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim(""), "");
}

TEST(Strings, Split)
{
    auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(parts[3], "c");
}

TEST(Strings, SplitWhitespace)
{
    auto parts = splitWhitespace("  ld   r1, 4(r2) ");
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "ld");
    EXPECT_EQ(parts[1], "r1,");
    EXPECT_EQ(parts[2], "4(r2)");
}

TEST(Strings, Misc)
{
    EXPECT_TRUE(startsWith("hello", "he"));
    EXPECT_FALSE(startsWith("h", "he"));
    EXPECT_EQ(toLower("AbC"), "abc");
    EXPECT_EQ(hexString(0xbeef, 4), "0xbeef");
    EXPECT_EQ(fixed(1.23456, 2), "1.23");
}

TEST(Error, FatalAndPanic)
{
    EXPECT_THROW(fatal("bad ", 42), FatalError);
    EXPECT_THROW(panic("bug"), PanicError);
    try {
        fatal("value=", 7, " name=", "x");
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "value=7 name=x");
    }
    EXPECT_NO_THROW(panicIf(false, "ok"));
    EXPECT_THROW(panicIf(true, "no"), PanicError);
}

TEST(Table, Renders)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1.50"});
    t.addRow({"b", "12.25"});
    const std::string s = t.str();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    // Numeric column right-aligned: "12.25" wider than " 1.50" check.
    EXPECT_NE(s.find(" 1.50"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(Table, ArityChecked)
{
    Table t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), PanicError);
}

} // namespace
