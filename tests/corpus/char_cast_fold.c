// Regression: the front end's constant folder looked through integer
// casts without narrowing, so (char)200 folded to 200 instead of -56
// and (char)256 was a truthy condition.  Found by d16fuzz; fixed in
// src/mc/irgen.cc (isConstInt).
int main() {
  int x; x = 100;
  print_int(x + (char)200);
  print_char('\n');
  if ((char)256) print_int(1); else print_int(0);
  print_char('\n');
  print_int((char)384);
  print_char('\n');
  print_int((int)(char)(-6 * 268435397));
  print_char('\n');
  return 0;
}
