// Regression: ++ and -- on a float or double operand emitted an
// integer Add on the floating-point vreg, corrupting the value (and
// the IR).  Fixed in src/mc/irgen.cc (genIncDec / genIncDecFp).
int main() {
  double d; d = 1.5;
  float f; f = 0.25;
  d++;
  f++;
  f--;
  d--;
  d++;
  print_f64(d);
  print_char('\n');
  print_f64((double)f);
  print_char('\n');
  return 0;
}
