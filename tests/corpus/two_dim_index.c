// Regression: indexing a row of a 2-D array used the stride of the
// row's *element* instead of the whole row, so g[i][j] collapsed every
// row onto row 0.  Fixed in src/mc/irgen.cc (genAddr, ExprKind::Index).
int g[4][8];

int main() {
  int i;
  int j;
  for (i = 0; i < 4; i++)
    for (j = 0; j < 8; j++)
      g[i][j] = i * 8 + j;
  int h; h = 0;
  for (i = 0; i < 4; i++)
    for (j = 0; j < 8; j++)
      h = h * 31 + g[i][j];
  print_int(h);
  print_char('\n');
  return 0;
}
