// Regression: folding unary minus of a known constant negated with
// signed host arithmetic, which is undefined behaviour when the
// constant is INT32_MIN (caught under UBSan).  Fixed in src/mc/opt.cc
// to negate in unsigned arithmetic.
int main() {
  int x; x = -2147483647 - 1;
  int y; y = -x;
  print_int(y);
  print_char('\n');
  print_int(-(-2147483647 - 1));
  print_char('\n');
  return 0;
}
