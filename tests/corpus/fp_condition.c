// Regression: a bare floating-point expression used as a condition
// (if/while/ternary truthiness) was branched on through the integer
// register file instead of being compared against FP zero.  Fixed in
// src/mc/irgen.cc (genCond).
int main() {
  double d; d = 0.5;
  float f; f = 0.0f;
  if (d) print_int(1); else print_int(0);
  print_char('\n');
  if (f) print_int(1); else print_int(0);
  print_char('\n');
  int n; n = 0;
  while (d) {
    n = n + 1;
    d = d - 0.125;
  }
  print_int(n);
  print_char('\n');
  print_int(f ? 7 : 3);
  print_char('\n');
  return 0;
}
