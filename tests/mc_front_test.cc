/**
 * @file
 * MiniC front-end tests: lexer, parser, type system, sema diagnostics,
 * and IR generation shape checks.
 */

#include <gtest/gtest.h>

#include "mc/irgen.hh"
#include "mc/lexer.hh"
#include "mc/parser.hh"
#include "mc/sema.hh"
#include "support/error.hh"

namespace
{

using namespace d16sim;
using namespace d16sim::mc;

Program
front(std::string_view src)
{
    Program p = parseProgram(src);
    analyze(p);
    return p;
}

IrModule
toIr(std::string_view src)
{
    Program p = front(src);
    return generateIr(p);
}

TEST(Lexer, TokensAndComments)
{
    auto toks = lex(R"(
// line comment
int x = 0x1f; /* block
comment */ char c = 'a'; double d = 1.5e3;
float f = 2.5f;
s = "hi\n" "there";
a <<= b >> 2; p->q.r++;
)");
    ASSERT_GT(toks.size(), 10u);
    EXPECT_EQ(toks[0].kind, Tok::KwInt);
    EXPECT_EQ(toks[1].kind, Tok::Ident);
    EXPECT_EQ(toks[1].text, "x");
    EXPECT_EQ(toks[3].kind, Tok::IntLit);
    EXPECT_EQ(toks[3].intValue, 0x1f);
    // char literal
    bool sawChar = false, sawFloat = false, sawSingle = false,
         sawString = false;
    for (const Token &t : toks) {
        if (t.kind == Tok::CharLit && t.intValue == 'a')
            sawChar = true;
        if (t.kind == Tok::FloatLit && t.floatValue == 1500.0)
            sawFloat = true;
        if (t.kind == Tok::FloatLit && t.floatIsSingle)
            sawSingle = true;
        if (t.kind == Tok::StringLit && t.text == "hi\nthere")
            sawString = true;
    }
    EXPECT_TRUE(sawChar);
    EXPECT_TRUE(sawFloat);
    EXPECT_TRUE(sawSingle);
    EXPECT_TRUE(sawString);
    EXPECT_EQ(toks.back().kind, Tok::End);
}

TEST(Lexer, Errors)
{
    EXPECT_THROW(lex("char c = 'ab';"), FatalError);
    EXPECT_THROW(lex("\"unterminated"), FatalError);
    EXPECT_THROW(lex("int x = `;"), FatalError);
    EXPECT_THROW(lex("/* never closed"), FatalError);
}

TEST(Types, SizesAndLayout)
{
    TypeTable tt;
    EXPECT_EQ(tt.intTy()->size(), 4);
    EXPECT_EQ(tt.charTy()->size(), 1);
    EXPECT_EQ(tt.doubleTy()->size(), 8);
    EXPECT_EQ(tt.pointerTo(tt.doubleTy())->size(), 4);
    EXPECT_EQ(tt.arrayOf(tt.intTy(), 10)->size(), 40);
    EXPECT_EQ(tt.arrayOf(tt.charTy(), 3)->align(), 1);
    // Interning: same derived type yields the same pointer.
    EXPECT_EQ(tt.pointerTo(tt.intTy()), tt.pointerTo(tt.intTy()));
    EXPECT_EQ(tt.arrayOf(tt.intTy(), 5), tt.arrayOf(tt.intTy(), 5));
}

TEST(Parser, StructLayout)
{
    Program p = front(R"(
struct pair { char tag; double value; int next; };
struct pair g;
int main() { return sizeof(struct pair); }
)");
    const StructInfo *s = p.types.findStruct("pair");
    ASSERT_NE(s, nullptr);
    EXPECT_TRUE(s->complete);
    ASSERT_EQ(s->fields.size(), 3u);
    EXPECT_EQ(s->fields[0].offset, 0);
    EXPECT_EQ(s->fields[1].offset, 8);   // aligned for double
    EXPECT_EQ(s->fields[2].offset, 16);
    EXPECT_EQ(s->size, 24);              // rounded to align 8
    EXPECT_EQ(s->align, 8);
}

TEST(Parser, GlobalsAndConstExpr)
{
    Program p = front(R"(
int table[4 * 8];
int limit = 100;
char msg[6] = "hello";
int weights[3] = { 1, 2, 3 };
int main() { return 0; }
)");
    ASSERT_EQ(p.globals.size(), 4u);
    EXPECT_EQ(p.globals[0].type->arrayLen(), 32);
    EXPECT_TRUE(p.globals[2].hasStringInit);
    EXPECT_EQ(p.globals[3].initList.size(), 3u);
}

TEST(Parser, SyntaxErrors)
{
    EXPECT_THROW(parseProgram("int main( { }"), FatalError);
    EXPECT_THROW(parseProgram("int main() { return 1 }"), FatalError);
    EXPECT_THROW(parseProgram("int main() { if x) ; }"), FatalError);
    EXPECT_THROW(parseProgram("int a[]; "), FatalError);
}

TEST(Sema, TypeErrors)
{
    EXPECT_THROW(front("int main() { return undeclared; }"), FatalError);
    EXPECT_THROW(front("int main() { int x; x(); return 0; }"),
                 FatalError);
    EXPECT_THROW(front("int main() { 1 = 2; return 0; }"), FatalError);
    EXPECT_THROW(front("int main() { int a[3]; a = 0; return 0; }"),
                 FatalError);
    EXPECT_THROW(front("int main() { double d; return d % 2.0; }"),
                 FatalError);
    EXPECT_THROW(front("int main() { break; }"), FatalError);
    EXPECT_THROW(front("void f(int a); int main() { f(); return 0; }"),
                 FatalError);
    EXPECT_THROW(front("int main() { int x; return x.field; }"),
                 FatalError);
    EXPECT_THROW(front("int main() { print_int(1, 2); return 0; }"),
                 FatalError);
    // Builtins cannot be shadowed.
    EXPECT_THROW(front("void print_int(int x) { } int main() {return 0;}"),
                 FatalError);
}

TEST(Sema, ImplicitConversionsInserted)
{
    Program p = front(R"(
int main() {
    double d = 1;      // int -> double cast inserted
    int i = d;         // double -> int
    unsigned u = i;
    char c = i;
    return c + u;
}
)");
    ASSERT_EQ(p.functions.size(), 1u);
    // Smoke: the program analyzed without error and locals were
    // recorded (d, i, u, c).
    EXPECT_EQ(p.functions[0].locals.size(), 4u);
}

TEST(Sema, AddressTakenMarking)
{
    Program p = front(R"(
void swap(int *a, int *b) { int t = *a; *a = *b; *b = t; }
int main() {
    int x = 1, y = 2, z = 3;
    swap(&x, &y);
    return x + y + z;
}
)");
    const FuncDecl &mainFn = p.functions[1];
    ASSERT_EQ(mainFn.locals.size(), 3u);
    EXPECT_TRUE(mainFn.locals[0].addressTaken);   // x
    EXPECT_TRUE(mainFn.locals[1].addressTaken);   // y
    EXPECT_FALSE(mainFn.locals[2].addressTaken);  // z
}

TEST(Sema, StringsPooled)
{
    Program p = front(R"(
int main() { print_str("one"); print_str("two"); return 0; }
)");
    ASSERT_EQ(p.strings.size(), 2u);
    EXPECT_EQ(p.strings[0], "one");
    EXPECT_EQ(p.strings[1], "two");
}

TEST(IrGen, StraightLineShape)
{
    IrModule m = toIr(R"(
int add3(int a, int b, int c) { return a + b + c; }
)");
    ASSERT_EQ(m.functions.size(), 1u);
    const IrFunction &f = m.functions[0];
    EXPECT_EQ(f.name, "add3");
    EXPECT_EQ(f.params.size(), 3u);
    ASSERT_GE(f.blocks.size(), 1u);
    const auto &insts = f.blocks[0].insts;
    ASSERT_GE(insts.size(), 3u);
    EXPECT_EQ(insts[0].op, IrOp::Add);
    EXPECT_EQ(insts[1].op, IrOp::Add);
    EXPECT_EQ(insts.back().op, IrOp::Ret);
}

TEST(IrGen, ImmediateOperandsStaySymbolic)
{
    IrModule m = toIr("int f(int a) { return a + 1000000; }\n");
    const auto &insts = m.functions[0].blocks[0].insts;
    ASSERT_EQ(insts[0].op, IrOp::Add);
    ASSERT_TRUE(insts[0].b.isImm());
    // The IR carries the immediate; per-target legality is decided in
    // code generation (the paper's immediate-field ablation).
    EXPECT_EQ(insts[0].b.imm, 1000000);
}

TEST(IrGen, LoopShape)
{
    IrModule m = toIr(R"(
int sum(int n) {
    int s = 0;
    int i;
    for (i = 1; i <= n; i++) s += i;
    return s;
}
)");
    const IrFunction &f = m.functions[0];
    // entry, cond, body, step, exit (+ possibly extras).
    EXPECT_GE(f.blocks.size(), 5u);
    // Exactly one Br with both successors.
    int brs = 0;
    for (const auto &b : f.blocks)
        for (const auto &i : b.insts)
            if (i.op == IrOp::Br)
                ++brs;
    EXPECT_EQ(brs, 1);
}

TEST(IrGen, AddressTakenLocalGetsSlot)
{
    IrModule m = toIr(R"(
int main() { int x = 5; int *p = &x; *p = 7; return x; }
)");
    const IrFunction &f = m.functions[0];
    ASSERT_EQ(f.slots.size(), 1u);
    EXPECT_EQ(f.slots[0].size, 4);
}

TEST(IrGen, ArrayIndexingFoldsConstantOffsets)
{
    IrModule m = toIr(R"(
int g[10];
int main() { return g[3]; }
)");
    const auto &insts = m.functions[0].blocks[0].insts;
    ASSERT_EQ(insts[0].op, IrOp::Load);
    EXPECT_EQ(insts[0].addr.kind, AddrKind::Global);
    EXPECT_EQ(insts[0].addr.sym, "g");
    EXPECT_EQ(insts[0].addr.offset, 12);
}

TEST(IrGen, MulDivSurviveToIr)
{
    IrModule m = toIr("int f(int a, int b) { return a * b + a / b; }\n");
    const auto &insts = m.functions[0].blocks[0].insts;
    EXPECT_EQ(insts[0].op, IrOp::Mul);
    EXPECT_EQ(insts[1].op, IrOp::DivS);
}

TEST(IrGen, CharLoadSignedness)
{
    IrModule m = toIr(R"(
char c; unsigned char_as_uint;
int main() { return c; }
)");
    const auto &insts = m.functions[0].blocks[0].insts;
    ASSERT_EQ(insts[0].op, IrOp::Load);
    EXPECT_EQ(insts[0].size, 1);
    EXPECT_TRUE(insts[0].signedLoad);
}

TEST(IrGen, DumpIsReadable)
{
    IrModule m = toIr("int f(int a) { return a * 2; }\n");
    const std::string dump = m.functions[0].dump();
    EXPECT_NE(dump.find("func f"), std::string::npos);
    EXPECT_NE(dump.find("mul"), std::string::npos);
    EXPECT_NE(dump.find("ret"), std::string::npos);
}

} // namespace
