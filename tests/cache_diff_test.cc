/**
 * @file
 * Randomized differential test for the sub-blocked cache model.
 *
 * A naive reference model — per-frame tag plus per-sub-block valid and
 * dirty bits, written as the most literal possible transcription of
 * the policy in mem/cache.hh (read-miss wrap-around prefetch, no
 * prefetch on writes, optional write-allocate, write-back or
 * write-through, LRU within a set) — is driven in lockstep with
 * mem::Cache over ~1k seeded random access streams spanning the
 * paper's configuration vocabulary. Every access must agree on
 * hit/miss, and every stream must end with identical traffic
 * classification (reads/writes/read-misses/write-misses/words-in/
 * words-out), including after a flush.
 */

#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "mem/cache.hh"

using namespace d16sim;

namespace
{

/** The most literal possible sector cache: no derived index math
 *  shared with the implementation under test beyond the set mapping
 *  the config dictates. */
class ReferenceCache
{
  public:
    explicit ReferenceCache(const mem::CacheConfig &cfg) : cfg_(cfg)
    {
        numSets_ = cfg.sizeBytes / (cfg.blockBytes * cfg.assoc);
        subPerBlock_ = cfg.blockBytes / cfg.subBlockBytes;
        sets_.assign(numSets_, std::vector<Frame>(
                                   cfg.assoc, Frame(subPerBlock_)));
    }

    bool
    access(uint32_t addr, int size, bool isWrite)
    {
        if (isWrite)
            ++stats_.writes;
        else
            ++stats_.reads;

        const uint32_t block = addr / cfg_.blockBytes;
        const uint32_t set = block % numSets_;
        const uint32_t tag = block / numSets_;
        const uint32_t sub =
            (addr % cfg_.blockBytes) / cfg_.subBlockBytes;
        ++clock_;

        Frame *frame = nullptr;
        for (Frame &f : sets_[set])
            if (f.live && f.tag == tag)
                frame = &f;

        if (frame && frame->valid[sub]) {
            frame->lastUse = clock_;
            if (isWrite) {
                if (cfg_.writeBack)
                    frame->dirty[sub] = true;
                else
                    stats_.wordsOut += words(size);
            }
            return true;
        }

        if (isWrite)
            ++stats_.writeMisses;
        else
            ++stats_.readMisses;

        const bool tagWasResident = frame != nullptr;
        if (!frame) {
            // LRU victim (an empty frame counts as oldest).
            frame = &sets_[set][0];
            for (Frame &f : sets_[set]) {
                if (!f.live) {
                    frame = &f;
                    break;
                }
                if (f.lastUse < frame->lastUse)
                    frame = &f;
            }
            writeBackAndInvalidate(*frame);
            frame->live = true;
            frame->tag = tag;
        }
        frame->lastUse = clock_;

        if (isWrite && !cfg_.writeAllocate) {
            stats_.wordsOut += words(size);
            if (!tagWasResident)
                frame->live = false;  // nothing was allocated after all
            return false;
        }

        // Demand fill, then wrap-around prefetch of the rest of the
        // block on read misses only.
        frame->valid[sub] = true;
        frame->dirty[sub] = false;
        stats_.wordsIn += cfg_.subBlockBytes / 4;
        if (!isWrite && cfg_.prefetchWrapAround) {
            for (uint32_t s = 0; s < subPerBlock_; ++s) {
                if (!frame->valid[s]) {
                    frame->valid[s] = true;
                    frame->dirty[s] = false;
                    stats_.wordsIn += cfg_.subBlockBytes / 4;
                }
            }
        }
        if (isWrite) {
            if (cfg_.writeBack)
                frame->dirty[sub] = true;
            else
                stats_.wordsOut += words(size);
        }
        return false;
    }

    void
    flush()
    {
        for (auto &set : sets_)
            for (Frame &f : set)
                writeBackAndInvalidate(f);
    }

    const mem::CacheStats &stats() const { return stats_; }

  private:
    struct Frame
    {
        explicit Frame(uint32_t subs) : valid(subs), dirty(subs) {}
        bool live = false;
        uint32_t tag = 0;
        uint64_t lastUse = 0;
        std::vector<bool> valid;
        std::vector<bool> dirty;
    };

    static uint64_t words(int size) { return (size + 3) / 4; }

    void
    writeBackAndInvalidate(Frame &f)
    {
        if (!f.live)
            return;
        if (cfg_.writeBack)
            for (uint32_t s = 0; s < subPerBlock_; ++s)
                if (f.dirty[s])
                    stats_.wordsOut += cfg_.subBlockBytes / 4;
        f.live = false;
        std::fill(f.valid.begin(), f.valid.end(), false);
        std::fill(f.dirty.begin(), f.dirty.end(), false);
    }

    mem::CacheConfig cfg_;
    uint32_t numSets_ = 0;
    uint32_t subPerBlock_ = 0;
    uint64_t clock_ = 0;
    std::vector<std::vector<Frame>> sets_;
    mem::CacheStats stats_;
};

void
expectStatsEqual(const mem::CacheStats &got, const mem::CacheStats &ref,
                 const std::string &where)
{
    EXPECT_EQ(got.reads, ref.reads) << where;
    EXPECT_EQ(got.writes, ref.writes) << where;
    EXPECT_EQ(got.readMisses, ref.readMisses) << where;
    EXPECT_EQ(got.writeMisses, ref.writeMisses) << where;
    EXPECT_EQ(got.wordsIn, ref.wordsIn) << where;
    EXPECT_EQ(got.wordsOut, ref.wordsOut) << where;
}

/** Configurations spanning the paper's vocabulary plus the write
 *  policies the model supports. */
std::vector<mem::CacheConfig>
configs()
{
    std::vector<mem::CacheConfig> out;
    for (uint32_t size : {256u, 1024u, 4096u}) {
        for (uint32_t block : {16u, 32u, 64u}) {
            for (uint32_t sub : {4u, 8u, block}) {
                for (uint32_t assoc : {1u, 2u, 4u}) {
                    if (block * assoc > size)
                        continue;
                    mem::CacheConfig cfg;
                    cfg.sizeBytes = size;
                    cfg.blockBytes = block;
                    cfg.subBlockBytes = sub;
                    cfg.assoc = assoc;
                    out.push_back(cfg);
                }
            }
        }
    }
    return out;
}

} // namespace

TEST(CacheDifferential, RandomStreamsMatchReferenceModel)
{
    const std::vector<mem::CacheConfig> cfgs = configs();
    const int streams = 1024;
    const int accessesPerStream = 512;
    uint64_t totalAccesses = 0;

    for (int stream = 0; stream < streams; ++stream) {
        std::mt19937 rng(0xd16c0de + stream);
        mem::CacheConfig cfg = cfgs[stream % cfgs.size()];
        // Exercise the policy knobs too: prefetch off every 3rd
        // stream, write-through every 5th, write-around every 7th.
        cfg.prefetchWrapAround = stream % 3 != 0;
        cfg.writeBack = stream % 5 != 0;
        cfg.writeAllocate = stream % 7 != 0;

        mem::Cache cache(cfg);
        ReferenceCache ref(cfg);

        // A small address space (a few multiples of the cache size)
        // keeps conflict and capacity behavior hot.
        const uint32_t span = cfg.sizeBytes * (1 + stream % 4);
        std::uniform_int_distribution<uint32_t> addrDist(0, span - 1);
        std::uniform_int_distribution<int> sizeDist(0, 2);
        std::uniform_int_distribution<int> writeDist(0, 99);

        for (int i = 0; i < accessesPerStream; ++i) {
            const int size = 1 << sizeDist(rng);  // 1, 2, or 4 bytes
            const uint32_t addr = addrDist(rng) & ~(size - 1u);
            const bool isWrite = writeDist(rng) < 30;
            const bool hit = cache.access(addr, size, isWrite);
            const bool refHit = ref.access(addr, size, isWrite);
            ASSERT_EQ(hit, refHit)
                << "stream " << stream << " access " << i << " addr 0x"
                << std::hex << addr << std::dec << " size " << size
                << (isWrite ? " write" : " read");
            ++totalAccesses;
        }
        expectStatsEqual(cache.stats(), ref.stats(),
                         "stream " + std::to_string(stream));

        cache.flush();
        ref.flush();
        expectStatsEqual(cache.stats(), ref.stats(),
                         "stream " + std::to_string(stream) +
                             " after flush");
        if (::testing::Test::HasFatalFailure())
            break;
    }
    EXPECT_EQ(totalAccesses,
              static_cast<uint64_t>(streams) * accessesPerStream);
}
