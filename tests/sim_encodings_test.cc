/**
 * @file
 * Exhaustive raw-encoding replay.
 *
 * A program can jump into in-text pool data (or clobber its own
 * return address) and end up executing arbitrary words through
 * Machine::decoded()'s raw-word fallback.  Whatever those words hold,
 * the simulator must either execute them or reject them with a
 * diagnosis (FatalError); an internal-invariant crash (PanicError)
 * means a reachable hole in the decode/execute surface.
 *
 * D16's 16-bit space is replayed exhaustively (all 65536 words);
 * DLXe's 32-bit space is sampled deterministically.  Each word is
 * replayed three times per position: through the raw-word fallback (no
 * predecoded sites), through the predecode table, and through the
 * block-compiled threaded-code engine (a hand-built BlockTable claiming
 * the whole text), which must all behave identically — the block replay
 * additionally requires bit-equal stats and architectural state against
 * the predecoded step replay.
 */

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <sstream>

#include "asm/image.hh"
#include "isa/target.hh"
#include "sim/block_engine.hh"
#include "sim/machine.hh"
#include "sim/predecode.hh"
#include "support/error.hh"

namespace
{

using namespace d16sim;

/** A text section of `count` copies of `word`, no insnSites, so every
 *  fetch goes through the raw-word fallback.  Repeating the word makes
 *  a taken branch execute the same word again in its delay slot. */
assem::Image
rawImage(const isa::TargetInfo &target, uint32_t word, int count)
{
    assem::Image img;
    img.target = &target;
    img.textBase = 0x100;
    const int ib = target.insnBytes();
    for (int i = 0; i < count; ++i)
        for (int b = 0; b < ib; ++b)
            img.bytes.push_back(
                static_cast<uint8_t>((word >> (8 * b)) & 0xff));
    img.textSize = static_cast<uint32_t>(img.bytes.size());
    img.textInsns = 0;
    img.dataBase = img.textBase + img.textSize;
    img.dataSize = 0;
    img.entry = img.textBase;
    return img;
}

/** Same image but with insnSites, so Machine predecodes each slot. */
assem::Image
sitedImage(const isa::TargetInfo &target, uint32_t word, int count)
{
    assem::Image img = rawImage(target, word, count);
    img.textInsns = static_cast<uint32_t>(count);
    const int ib = target.insnBytes();
    for (int i = 0; i < count; ++i)
        img.insnSites.push_back(
            {img.textBase + static_cast<uint32_t>(i * ib), 0});
    return img;
}

enum class Verdict
{
    Ran,    //!< executed to halt or ran out of budget without error
    Fatal,  //!< rejected with a diagnosis — acceptable
    Panic,  //!< internal crash — never acceptable
};

/** Architectural + measurement state after a replay, for differential
 *  comparison between the step and block dispatch paths. */
struct Outcome
{
    Verdict verdict = Verdict::Ran;
    sim::SimStats stats;
    std::string output;
    uint32_t pc = 0;
    std::array<uint32_t, 16> regs{};

    bool
    operator==(const Outcome &o) const
    {
        return verdict == o.verdict && stats == o.stats &&
               output == o.output && pc == o.pc && regs == o.regs;
    }
};

sim::MachineConfig
replayConfig()
{
    sim::MachineConfig cfg;
    cfg.memBytes = 1u << 16;
    cfg.maxInstructions = 16;
    return cfg;
}

void
snapshot(const sim::Machine &m, Outcome *out)
{
    out->stats = m.stats();
    out->output = m.output();
    out->pc = m.pc();
    for (int r = 0; r < 16; ++r)
        out->regs[static_cast<size_t>(r)] = m.reg(r);
}

Verdict
replay(const assem::Image &img, std::string *why, Outcome *out = nullptr)
{
    try {
        sim::Machine m(img, replayConfig());
        try {
            m.run();
        } catch (...) {
            if (out)
                snapshot(m, out);
            throw;
        }
        if (out)
            snapshot(m, out);
        return Verdict::Ran;
    } catch (const PanicError &e) {
        *why = e.what();
        return Verdict::Panic;
    } catch (const FatalError &e) {
        *why = e.what();
        return Verdict::Fatal;
    }
}

/** Replay through the block engine with a hand-built BlockTable that
 *  claims the whole (sited) text as one span; translation demotes
 *  whatever it cannot compile to needsStep, and dispatch falls back to
 *  step() for the rest — the outcome must match step dispatch bit for
 *  bit. */
Verdict
replayBlocks(const assem::Image &img, std::string *why, Outcome *out)
{
    try {
        auto text = std::make_shared<const sim::DecodedText>(img);
        sim::BlockTable table;
        table.spans.push_back(
            {img.textBase, static_cast<uint32_t>(img.insnSites.size())});
        auto blocks = std::make_shared<const sim::BlockProgram>(
            img, *text, table);
        sim::Machine m(img, replayConfig(), text);
        m.setBlockProgram(std::move(blocks));
        try {
            m.run();
        } catch (...) {
            snapshot(m, out);
            throw;
        }
        snapshot(m, out);
        return Verdict::Ran;
    } catch (const PanicError &e) {
        *why = e.what();
        return Verdict::Panic;
    } catch (const FatalError &e) {
        *why = e.what();
        return Verdict::Fatal;
    }
}

/** Replay `word` through all three dispatch paths; report any panic or
 *  any step-vs-block divergence. */
void
checkWord(const isa::TargetInfo &target, uint32_t word, int &panics,
          std::ostringstream &report)
{
    std::string why;
    if (replay(rawImage(target, word, 4), &why) == Verdict::Panic) {
        if (++panics <= 10)
            report << "  raw word " << std::hex << word << std::dec
                   << ": " << why << "\n";
        return;
    }
    const assem::Image sited = sitedImage(target, word, 4);
    Outcome step, block;
    step.verdict = replay(sited, &why, &step);
    if (step.verdict == Verdict::Panic) {
        if (++panics <= 10)
            report << "  sited word " << std::hex << word << std::dec
                   << ": " << why << "\n";
        return;
    }
    block.verdict = replayBlocks(sited, &why, &block);
    if (block.verdict == Verdict::Panic) {
        if (++panics <= 10)
            report << "  block word " << std::hex << word << std::dec
                   << ": " << why << "\n";
        return;
    }
    if (!(step == block)) {
        if (++panics <= 10)
            report << "  word " << std::hex << word << std::dec
                   << ": step/block divergence (insns "
                   << step.stats.instructions << " vs "
                   << block.stats.instructions << ", pc " << std::hex
                   << step.pc << " vs " << block.pc << std::dec << ")\n";
    }
}

TEST(RawEncodings, AllD16WordsDiagnoseOrExecute)
{
    const isa::TargetInfo &d16 = isa::TargetInfo::d16();
    int panics = 0;
    std::ostringstream report;
    for (uint32_t word = 0; word <= 0xffff; ++word)
        checkWord(d16, word, panics, report);
    EXPECT_EQ(panics, 0) << report.str();
}

TEST(RawEncodings, SampledDlxeWordsDiagnoseOrExecute)
{
    // 2^32 words is out of reach; cover every value of the top opcode
    // byte crossed with a deterministic xorshift sample of operand
    // bits, plus the low 16-bit patterns (immediate corner cases).
    const isa::TargetInfo &dlxe = isa::TargetInfo::dlxe();
    int panics = 0;
    std::ostringstream report;
    uint32_t s = 0x243f6a88u;
    for (uint32_t hi = 0; hi <= 0xff; ++hi) {
        for (int i = 0; i < 64; ++i) {
            s ^= s << 13;
            s ^= s >> 17;
            s ^= s << 5;
            checkWord(dlxe, (hi << 24) | (s & 0x00ffffffu), panics,
                      report);
        }
        checkWord(dlxe, (hi << 24) | 0x0000ffffu, panics, report);
        checkWord(dlxe, hi << 24, panics, report);
    }
    EXPECT_EQ(panics, 0) << report.str();
}

} // namespace
