/**
 * @file
 * Exhaustive raw-encoding replay.
 *
 * A program can jump into in-text pool data (or clobber its own
 * return address) and end up executing arbitrary words through
 * Machine::decoded()'s raw-word fallback.  Whatever those words hold,
 * the simulator must either execute them or reject them with a
 * diagnosis (FatalError); an internal-invariant crash (PanicError)
 * means a reachable hole in the decode/execute surface.
 *
 * D16's 16-bit space is replayed exhaustively (all 65536 words);
 * DLXe's 32-bit space is sampled deterministically.  Each word is
 * replayed twice per position: once through the raw-word fallback (no
 * predecoded sites) and, when it decodes at all, once through the
 * predecode table, which must behave identically.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "asm/image.hh"
#include "isa/target.hh"
#include "sim/machine.hh"
#include "sim/predecode.hh"
#include "support/error.hh"

namespace
{

using namespace d16sim;

/** A text section of `count` copies of `word`, no insnSites, so every
 *  fetch goes through the raw-word fallback.  Repeating the word makes
 *  a taken branch execute the same word again in its delay slot. */
assem::Image
rawImage(const isa::TargetInfo &target, uint32_t word, int count)
{
    assem::Image img;
    img.target = &target;
    img.textBase = 0x100;
    const int ib = target.insnBytes();
    for (int i = 0; i < count; ++i)
        for (int b = 0; b < ib; ++b)
            img.bytes.push_back(
                static_cast<uint8_t>((word >> (8 * b)) & 0xff));
    img.textSize = static_cast<uint32_t>(img.bytes.size());
    img.textInsns = 0;
    img.dataBase = img.textBase + img.textSize;
    img.dataSize = 0;
    img.entry = img.textBase;
    return img;
}

/** Same image but with insnSites, so Machine predecodes each slot. */
assem::Image
sitedImage(const isa::TargetInfo &target, uint32_t word, int count)
{
    assem::Image img = rawImage(target, word, count);
    img.textInsns = static_cast<uint32_t>(count);
    const int ib = target.insnBytes();
    for (int i = 0; i < count; ++i)
        img.insnSites.push_back(
            {img.textBase + static_cast<uint32_t>(i * ib), 0});
    return img;
}

enum class Verdict
{
    Ran,    //!< executed to halt or ran out of budget without error
    Fatal,  //!< rejected with a diagnosis — acceptable
    Panic,  //!< internal crash — never acceptable
};

Verdict
replay(const assem::Image &img, std::string *why)
{
    sim::MachineConfig cfg;
    cfg.memBytes = 1u << 16;
    cfg.maxInstructions = 16;
    try {
        sim::Machine m(img, cfg);
        m.run();
        return Verdict::Ran;
    } catch (const PanicError &e) {
        *why = e.what();
        return Verdict::Panic;
    } catch (const FatalError &e) {
        *why = e.what();
        return Verdict::Fatal;
    }
}

/** Replay `word` through both decode paths; report any panic. */
void
checkWord(const isa::TargetInfo &target, uint32_t word, int &panics,
          std::ostringstream &report)
{
    std::string why;
    if (replay(rawImage(target, word, 4), &why) == Verdict::Panic) {
        if (++panics <= 10)
            report << "  raw word " << std::hex << word << std::dec
                   << ": " << why << "\n";
        return;
    }
    if (replay(sitedImage(target, word, 4), &why) == Verdict::Panic) {
        if (++panics <= 10)
            report << "  sited word " << std::hex << word << std::dec
                   << ": " << why << "\n";
    }
}

TEST(RawEncodings, AllD16WordsDiagnoseOrExecute)
{
    const isa::TargetInfo &d16 = isa::TargetInfo::d16();
    int panics = 0;
    std::ostringstream report;
    for (uint32_t word = 0; word <= 0xffff; ++word)
        checkWord(d16, word, panics, report);
    EXPECT_EQ(panics, 0) << report.str();
}

TEST(RawEncodings, SampledDlxeWordsDiagnoseOrExecute)
{
    // 2^32 words is out of reach; cover every value of the top opcode
    // byte crossed with a deterministic xorshift sample of operand
    // bits, plus the low 16-bit patterns (immediate corner cases).
    const isa::TargetInfo &dlxe = isa::TargetInfo::dlxe();
    int panics = 0;
    std::ostringstream report;
    uint32_t s = 0x243f6a88u;
    for (uint32_t hi = 0; hi <= 0xff; ++hi) {
        for (int i = 0; i < 64; ++i) {
            s ^= s << 13;
            s ^= s >> 17;
            s ^= s << 5;
            checkWord(dlxe, (hi << 24) | (s & 0x00ffffffu), panics,
                      report);
        }
        checkWord(dlxe, (hi << 24) | 0x0000ffffu, panics, report);
        checkWord(dlxe, hi << 24, panics, report);
    }
    EXPECT_EQ(panics, 0) << report.str();
}

} // namespace
