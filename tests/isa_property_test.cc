/**
 * @file
 * Exhaustive encoding-space properties.
 *
 * D16's space is small enough to sweep completely: every one of the
 * 65536 half-words either decodes to a well-formed instruction or is
 * rejected as reserved — never crashes, never yields out-of-range
 * operands — and every decodable word re-encodes to itself
 * (encode . reconstruct . decode = identity). A sampled version of the
 * same property runs over the DLXe space.
 */

#include <gtest/gtest.h>

#include "isa/codec.hh"
#include "isa/disasm.hh"
#include "support/error.hh"

namespace
{

using namespace d16sim;
using namespace d16sim::isa;

/** Rebuild the symbolic form from a decoded instruction (inverse of
 *  the decode conventions in decoded.hh). */
AsmInst
reconstruct(const TargetInfo &t, const DecodedInst &d)
{
    AsmInst a;
    a.op = d.op;
    a.cond = d.cond;
    switch (opClass(d.op)) {
      case OpClass::IntAlu:
        if (d.op == Op::Cmp) {
            a = AsmInst::cmp(d.cond, d.rd, d.rs1, d.rs2);
        } else if (d.op == Op::Neg || d.op == Op::Inv || d.op == Op::Mv) {
            a = AsmInst::ri(d.op, d.rd, d.rs1, 0);
        } else {
            a = AsmInst::r3(d.op, d.rd, d.rs1, d.rs2);
        }
        break;
      case OpClass::IntAluImm:
        if (d.op == Op::MvI || d.op == Op::MvHI) {
            a = AsmInst::ri(d.op, d.rd, -1, d.imm);
        } else if (d.op == Op::CmpI) {
            a = AsmInst::ri(d.op, d.rd, d.rs1, d.imm);
            a.cond = d.cond;
        } else {
            a = AsmInst::ri(d.op, d.rd, d.rs1, d.imm);
        }
        break;
      case OpClass::Load:
        a = AsmInst::ri(d.op, d.rd, d.rs1, d.imm);
        break;
      case OpClass::Store:
        a.op = d.op;
        a.rs1 = d.rs1;
        a.rs2 = d.rs2;
        a.imm = d.imm;
        break;
      case OpClass::LoadConst:
        a.op = Op::Ldc;
        a.imm = d.imm;
        break;
      case OpClass::Branch:
        a.op = d.op;
        a.rs1 = t.kind() == IsaKind::D16 ? 0 : d.rs1;
        a.imm = d.imm;
        break;
      case OpClass::Jump:
        a.op = d.op;
        if (d.op == Op::J || d.op == Op::Jl) {
            a.imm = d.imm;
        } else if (d.op == Op::Jrz || d.op == Op::Jrnz) {
            a.rs1 = d.rs1;
            a.rs2 = t.kind() == IsaKind::D16 ? 0 : d.rs2;
        } else {
            a.rs1 = d.rs1;
        }
        break;
      case OpClass::FpAlu:
        if (d.op == Op::FCmpS || d.op == Op::FCmpD) {
            a = AsmInst::r3(d.op, -1, d.rs1, d.rs2);
            a.cond = d.cond;
        } else if (d.op == Op::FNegS || d.op == Op::FNegD) {
            a = AsmInst::ri(d.op, d.rd, d.rs1, 0);
        } else {
            a = AsmInst::r3(d.op, d.rd, d.rs1, d.rs2);
        }
        break;
      case OpClass::FpConvert:
      case OpClass::FpMove:
        a = AsmInst::ri(d.op, d.rd, d.rs1, 0);
        break;
      case OpClass::Misc:
        if (d.op == Op::Trap) {
            a.op = Op::Trap;
            a.imm = d.imm;
        } else if (d.op == Op::Rdsr) {
            a = AsmInst::ri(Op::Rdsr, d.rd, -1, 0);
        }
        break;
    }
    return a;
}

TEST(D16Space, ExhaustiveDecodeNeverCrashes)
{
    int valid = 0;
    int reserved = 0;
    for (uint32_t w = 0; w <= 0xffff; ++w) {
        try {
            const DecodedInst d = d16Decode(static_cast<uint16_t>(w));
            ++valid;
            // Operand sanity.
            EXPECT_LT(d.rd, 16);
            EXPECT_LT(d.rs1, 16);
            EXPECT_LT(d.rs2, 16);
            EXPECT_LT(static_cast<int>(d.op),
                      static_cast<int>(Op::NumOps));
            // Disassembly must not throw either.
            disassemble(TargetInfo::d16(), d, 0x1000);
        } catch (const FatalError &) {
            ++reserved;
        }
    }
    EXPECT_EQ(valid + reserved, 65536);
    // The format map assigns most of the space.
    EXPECT_GT(valid, 30000);
    EXPECT_GT(reserved, 0);
}

TEST(D16Space, DecodableWordsReencodeExactly)
{
    const TargetInfo &t = TargetInfo::d16();
    int checked = 0;
    for (uint32_t w = 0; w <= 0xffff; ++w) {
        DecodedInst d;
        try {
            d = d16Decode(static_cast<uint16_t>(w));
        } catch (const FatalError &) {
            continue;
        }
        const AsmInst a = reconstruct(t, d);
        const uint16_t re = d16Encode(a);
        EXPECT_EQ(re, static_cast<uint16_t>(w))
            << "word " << w << " decodes to "
            << disassemble(t, d, 0) << " which re-encodes to " << re;
        if (re != w)
            break;  // one detailed failure is enough
        ++checked;
    }
    EXPECT_GT(checked, 30000);
}

TEST(DLXeSpace, SampledDecodeReencode)
{
    const TargetInfo &t = TargetInfo::dlxe();
    uint32_t state = 0x12345678;
    int checked = 0;
    for (int i = 0; i < 300000; ++i) {
        state ^= state << 13;
        state ^= state >> 17;
        state ^= state << 5;
        const uint32_t w = state;
        DecodedInst d;
        try {
            d = dlxeDecode(w);
        } catch (const FatalError &) {
            continue;
        }
        const AsmInst a = reconstruct(t, d);
        uint32_t re = 0;
        try {
            re = dlxeEncode(a);
        } catch (const FatalError &e) {
            ADD_FAILURE() << "word " << w << " ("
                          << disassemble(t, d, 0)
                          << ") failed to re-encode: " << e.what();
            break;
        }
        // mvi aliases addi rs1=r0; otherwise exact.
        EXPECT_EQ(re, w) << disassemble(t, d, 0);
        if (re != w)
            break;
        ++checked;
    }
    // Random 32-bit words rarely have canonical reserved fields; the
    // property is that whatever DOES decode re-encodes exactly.
    EXPECT_GT(checked, 10);
}

TEST(DLXeSpace, StructuredSweepReencodes)
{
    // Every op at several operand settings, exact round trip through
    // the shared reconstruct helper.
    const TargetInfo &t = TargetInfo::dlxe();
    int checked = 0;
    for (int op = 0; op < numOps; ++op) {
        const Op o = static_cast<Op>(op);
        if (o == Op::Nop || !t.hasOp(o))
            continue;
        for (int variant = 0; variant < 4; ++variant) {
            AsmInst a;
            a.op = o;
            a.rd = (variant * 7 + 2) % 32;
            a.rs1 = (variant * 11 + 1) % 32;
            a.rs2 = (variant * 13 + 3) % 32;
            a.imm = (variant * 1000) - 1500;
            a.cond = static_cast<Cond>(variant % (hasCond(o) ? 10 : 1));
            if (o == Op::FCmpS || o == Op::FCmpD) {
                static constexpr Cond fpConds[] = {Cond::Lt, Cond::Le,
                                                   Cond::Eq};
                a.cond = fpConds[variant % 3];
            }
            // Fix up per-op operand constraints.
            switch (o) {
              case Op::ShlI: case Op::ShrI: case Op::ShraI:
                a.imm = variant * 9;
                break;
              case Op::AndI: case Op::OrI: case Op::XorI:
              case Op::MvHI:
                a.imm = variant * 999;
                break;
              case Op::Trap:
                a.imm = variant * 11;
                break;
              case Op::Br: case Op::Bz: case Op::Bnz:
                a.imm = variant * 8 - 16;
                break;
              case Op::J: case Op::Jl:
                a.imm = variant * 4096 - 8192;
                break;
              default:
                break;
            }
            uint32_t w = 0;
            try {
                w = dlxeEncode(a);
            } catch (const FatalError &) {
                continue;  // variant hit an operand constraint
            }
            const DecodedInst d = dlxeDecode(w);
            const uint32_t re = dlxeEncode(reconstruct(t, d));
            EXPECT_EQ(re, w) << opName(o) << " variant " << variant;
            ++checked;
        }
    }
    EXPECT_GT(checked, 150);
}

} // namespace
