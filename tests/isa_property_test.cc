/**
 * @file
 * Exhaustive encoding-space properties.
 *
 * D16's space is small enough to sweep completely: every one of the
 * 65536 half-words either decodes to a well-formed instruction or is
 * rejected as reserved — never crashes, never yields out-of-range
 * operands — and every decodable word re-encodes to itself
 * (encode . reconstruct . decode = identity). A sampled version of the
 * same property runs over the DLXe space.
 */

#include <gtest/gtest.h>

#include "isa/codec.hh"
#include "isa/disasm.hh"
#include "isa/reconstruct.hh"
#include "support/error.hh"

namespace
{

using namespace d16sim;
using namespace d16sim::isa;

TEST(D16Space, ExhaustiveDecodeNeverCrashes)
{
    int valid = 0;
    int reserved = 0;
    for (uint32_t w = 0; w <= 0xffff; ++w) {
        try {
            const DecodedInst d = d16Decode(static_cast<uint16_t>(w));
            ++valid;
            // Operand sanity.
            EXPECT_LT(d.rd, 16);
            EXPECT_LT(d.rs1, 16);
            EXPECT_LT(d.rs2, 16);
            EXPECT_LT(static_cast<int>(d.op),
                      static_cast<int>(Op::NumOps));
            // Disassembly must not throw either.
            disassemble(TargetInfo::d16(), d, 0x1000);
        } catch (const FatalError &) {
            ++reserved;
        }
    }
    EXPECT_EQ(valid + reserved, 65536);
    // The format map assigns most of the space.
    EXPECT_GT(valid, 30000);
    EXPECT_GT(reserved, 0);
}

TEST(D16Space, DecodableWordsReencodeExactly)
{
    const TargetInfo &t = TargetInfo::d16();
    int checked = 0;
    for (uint32_t w = 0; w <= 0xffff; ++w) {
        DecodedInst d;
        try {
            d = d16Decode(static_cast<uint16_t>(w));
        } catch (const FatalError &) {
            continue;
        }
        const AsmInst a = reconstruct(t, d);
        const uint16_t re = d16Encode(a);
        EXPECT_EQ(re, static_cast<uint16_t>(w))
            << "word " << w << " decodes to "
            << disassemble(t, d, 0) << " which re-encodes to " << re;
        if (re != w)
            break;  // one detailed failure is enough
        ++checked;
    }
    EXPECT_GT(checked, 30000);
}

TEST(DLXeSpace, SampledDecodeReencode)
{
    const TargetInfo &t = TargetInfo::dlxe();
    uint32_t state = 0x12345678;
    int checked = 0;
    for (int i = 0; i < 300000; ++i) {
        state ^= state << 13;
        state ^= state >> 17;
        state ^= state << 5;
        const uint32_t w = state;
        DecodedInst d;
        try {
            d = dlxeDecode(w);
        } catch (const FatalError &) {
            continue;
        }
        const AsmInst a = reconstruct(t, d);
        uint32_t re = 0;
        try {
            re = dlxeEncode(a);
        } catch (const FatalError &e) {
            ADD_FAILURE() << "word " << w << " ("
                          << disassemble(t, d, 0)
                          << ") failed to re-encode: " << e.what();
            break;
        }
        // mvi aliases addi rs1=r0; otherwise exact.
        EXPECT_EQ(re, w) << disassemble(t, d, 0);
        if (re != w)
            break;
        ++checked;
    }
    // Random 32-bit words rarely have canonical reserved fields; the
    // property is that whatever DOES decode re-encodes exactly.
    EXPECT_GT(checked, 10);
}

TEST(DLXeSpace, StructuredSweepReencodes)
{
    // Every op at several operand settings, exact round trip through
    // the shared reconstruct helper.
    const TargetInfo &t = TargetInfo::dlxe();
    int checked = 0;
    for (int op = 0; op < numOps; ++op) {
        const Op o = static_cast<Op>(op);
        if (o == Op::Nop || !t.hasOp(o))
            continue;
        for (int variant = 0; variant < 4; ++variant) {
            AsmInst a;
            a.op = o;
            a.rd = (variant * 7 + 2) % 32;
            a.rs1 = (variant * 11 + 1) % 32;
            a.rs2 = (variant * 13 + 3) % 32;
            a.imm = (variant * 1000) - 1500;
            a.cond = static_cast<Cond>(variant % (hasCond(o) ? 10 : 1));
            if (o == Op::FCmpS || o == Op::FCmpD) {
                static constexpr Cond fpConds[] = {Cond::Lt, Cond::Le,
                                                   Cond::Eq};
                a.cond = fpConds[variant % 3];
            }
            // Fix up per-op operand constraints.
            switch (o) {
              case Op::ShlI: case Op::ShrI: case Op::ShraI:
                a.imm = variant * 9;
                break;
              case Op::AndI: case Op::OrI: case Op::XorI:
              case Op::MvHI:
                a.imm = variant * 999;
                break;
              case Op::Trap:
                a.imm = variant * 11;
                break;
              case Op::Br: case Op::Bz: case Op::Bnz:
                a.imm = variant * 8 - 16;
                break;
              case Op::J: case Op::Jl:
                a.imm = variant * 4096 - 8192;
                break;
              default:
                break;
            }
            uint32_t w = 0;
            try {
                w = dlxeEncode(a);
            } catch (const FatalError &) {
                continue;  // variant hit an operand constraint
            }
            const DecodedInst d = dlxeDecode(w);
            const uint32_t re = dlxeEncode(reconstruct(t, d));
            EXPECT_EQ(re, w) << opName(o) << " variant " << variant;
            ++checked;
        }
    }
    EXPECT_GT(checked, 150);
}

} // namespace
