/**
 * @file
 * Core experiment-layer tests: fetch-buffer model, cache probe,
 * immediate classifier, and the §4 performance formulas.
 */

#include <gtest/gtest.h>

#include "core/toolchain.hh"
#include "core/workloads.hh"

namespace
{

using namespace d16sim;
using namespace d16sim::core;
using mc::CompileOptions;

TEST(FetchBuffer, CountsAlignedBlockRequests)
{
    FetchBufferProbe fb(8);  // 64-bit bus
    // Two fetches in the same 8-byte block: one request.
    fb.onIFetch(0x1000);
    fb.onIFetch(0x1004);
    EXPECT_EQ(fb.requests(), 1u);
    // Next block.
    fb.onIFetch(0x1008);
    EXPECT_EQ(fb.requests(), 2u);
    // Branch backwards out of the buffer: refetch.
    fb.onIFetch(0x1000);
    EXPECT_EQ(fb.requests(), 3u);
    // Words = requests * busWords.
    EXPECT_EQ(fb.words(), 6u);
}

TEST(FetchBuffer, D16PacksTwicePerBlock)
{
    FetchBufferProbe fb(4);
    // Two 16-bit instructions share a 32-bit word.
    fb.onIFetch(0x1000);
    fb.onIFetch(0x1002);
    fb.onIFetch(0x1004);
    EXPECT_EQ(fb.requests(), 2u);
}

TEST(PerfFormulas, MatchPaperDefinitions)
{
    sim::SimStats s;
    s.instructions = 1000;
    s.loadInterlocks = 40;
    s.fpInterlocks = 10;
    s.loads = 100;
    s.stores = 50;
    // Cycles = IC + Interlocks + l*(Ireq + Dreq)
    EXPECT_EQ(cyclesNoCache(s, 0, 600), 1050u);
    EXPECT_EQ(cyclesNoCache(s, 2, 600), 1050u + 2 * (600 + 150));
    // Cycles = IC + Interlocks + penalty*(misses)
    mem::CacheStats ic, dc;
    ic.readMisses = 20;
    dc.readMisses = 5;
    dc.writeMisses = 5;
    EXPECT_EQ(cyclesWithCache(s, 4, ic, dc), 1050u + 4 * 30);
}

TEST(ImmediateClassifier, FlagsD16IllegalImmediates)
{
    ImmediateClassProbe p;
    isa::DecodedInst i;
    // addi within 5-bit unsigned: legal on D16.
    i.op = isa::Op::AddI;
    i.imm = 31;
    p.onExec(i, 0);
    // addi 100: exceeds D16's 5 bits.
    i.imm = 100;
    p.onExec(i, 0);
    // addi -3 == subi 3: legal.
    i.imm = -3;
    p.onExec(i, 0);
    // cmpi: never available on D16.
    i.op = isa::Op::CmpI;
    i.imm = 1;
    p.onExec(i, 0);
    // ld with offset 200: not expressible.
    i.op = isa::Op::Ld;
    i.imm = 200;
    p.onExec(i, 0);
    // ld offset 64: expressible.
    i.imm = 64;
    p.onExec(i, 0);
    // ldb with any offset: not expressible.
    i.op = isa::Op::Ldb;
    i.imm = 4;
    p.onExec(i, 0);

    EXPECT_EQ(p.total(), 7u);
    EXPECT_EQ(p.aluImmediate(), 1u);
    EXPECT_EQ(p.cmpImmediate(), 1u);
    EXPECT_EQ(p.memDisplacement(), 2u);
    EXPECT_NEAR(p.pct(p.total()), 100.0, 1e-9);
}

TEST(CacheProbe, RoutesStreams)
{
    mem::CacheConfig cfg;
    cfg.sizeBytes = 1024;
    CacheProbe p(cfg, cfg);
    p.setInsnBytes(2);
    p.onIFetch(0x1000);
    p.onIFetch(0x1002);
    p.onDataRead(0x2000, 4);
    p.onDataWrite(0x2004, 4);
    EXPECT_EQ(p.icache().stats().reads, 2u);
    EXPECT_EQ(p.icache().stats().readMisses, 1u);  // same block
    EXPECT_EQ(p.dcache().stats().reads, 1u);
    EXPECT_EQ(p.dcache().stats().writes, 1u);
}

TEST(Toolchain, BuildRunRoundTrip)
{
    const char *src = R"(
int main() { print_int(6 * 7); return 0; }
)";
    const auto img = build(src, CompileOptions::d16());
    EXPECT_GT(img.textInsns, 0u);
    FetchBufferProbe fb(4);
    const auto m = run(img, {&fb});
    EXPECT_EQ(m.output, "42");
    EXPECT_GT(fb.requests(), 0u);
    EXPECT_LE(fb.requests(), m.stats.instructions);
}

TEST(Toolchain, CacheRunAgreesWithPlainRun)
{
    const char *src = R"(
int v[64];
int main() {
    int i, s = 0;
    for (i = 0; i < 64; i++) v[i] = i;
    for (i = 0; i < 64; i++) s += v[i];
    print_int(s);
    return 0;
}
)";
    const auto img = build(src, CompileOptions::dlxe());
    mem::CacheConfig cfg;
    cfg.sizeBytes = 1024;
    CacheProbe probe(cfg, cfg);
    const auto m1 = run(img);
    const auto m2 = run(img, {&probe});
    // Probes must not perturb execution.
    EXPECT_EQ(m1.output, m2.output);
    EXPECT_EQ(m1.stats.instructions, m2.stats.instructions);
    // All loads/stores reached the D-cache.
    EXPECT_EQ(probe.dcache().stats().accesses(), m2.stats.memOps());
    // All instruction fetches reached the I-cache.
    EXPECT_EQ(probe.icache().stats().reads, m2.stats.instructions);
}

TEST(Toolchain, NormalizedCpiCrossoverWithWaitStates)
{
    // The paper's central crossover (Fig. 14): at zero wait states
    // DLXe wins; with wait states on a 32-bit bus, D16 catches up or
    // wins. Measured on a fetch-heavy workload.
    const auto &w = workload("towers");
    const auto imgD = build(w.source, CompileOptions::d16());
    const auto imgX = build(w.source, CompileOptions::dlxe());
    FetchBufferProbe fbD(4), fbX(4);
    const auto mD = run(imgD, {&fbD});
    const auto mX = run(imgX, {&fbX});

    const uint64_t d0 = cyclesNoCache(mD.stats, 0, fbD.requests());
    const uint64_t x0 = cyclesNoCache(mX.stats, 0, fbX.requests());
    const uint64_t d3 = cyclesNoCache(mD.stats, 3, fbD.requests());
    const uint64_t x3 = cyclesNoCache(mX.stats, 3, fbX.requests());
    EXPECT_LT(x0, d0);  // zero latency: fewer instructions wins
    EXPECT_LT(d3, x3);  // three wait states: lower traffic wins
}

} // namespace
