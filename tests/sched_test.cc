/**
 * @file
 * Instruction-scheduler unit tests: delay-slot filling and load-delay
 * separation on hand-built item sequences, plus safety conditions
 * (branch targets, dependences).
 */

#include <gtest/gtest.h>

#include "asm/parser.hh"
#include "mc/sched.hh"

namespace
{

using namespace d16sim;
using namespace d16sim::assem;
using namespace d16sim::mc;
using isa::Op;
using isa::TargetInfo;

std::vector<AsmItem>
items(const TargetInfo &t, std::string_view src)
{
    return parseAsm(t, src);
}

/** Ops of the Inst items, in order. */
std::vector<Op>
opsOf(const std::vector<AsmItem> &v)
{
    std::vector<Op> out;
    for (const auto &item : v)
        if (item.kind == ItemKind::Inst)
            out.push_back(item.inst.op);
    return out;
}

TEST(Scheduler, FillsBranchDelaySlot)
{
    const TargetInfo &t = TargetInfo::dlxe();
    auto v = items(t, R"(
main:
    mvi r2, 1
    mvi r3, 2
    br out
    nop
other:
    mvi r4, 4
out:
    ret
    nop
)");
    const SchedStats st = schedule(v, t);
    EXPECT_EQ(st.slotsFilled, 1);
    // mvi r3 moved into the slot: order is mvi r2, br, mvi r3.
    const auto ops = opsOf(v);
    ASSERT_GE(ops.size(), 3u);
    EXPECT_EQ(ops[1], Op::Br);
    EXPECT_EQ(ops[2], Op::MvI);
}

TEST(Scheduler, RefusesDependentCandidate)
{
    const TargetInfo &t = TargetInfo::dlxe();
    // The candidate writes the branch's test register: cannot move.
    auto v = items(t, R"(
main:
    mvi r2, 1
    mvi r3, 0
    bnz r3, main
    nop
    ret
    nop
)");
    const SchedStats st = schedule(v, t);
    // mvi r3 must not move past bnz r3.
    const auto ops = opsOf(v);
    EXPECT_EQ(ops[0], Op::MvI);
    EXPECT_EQ(ops[1], Op::MvI);
    EXPECT_EQ(ops[2], Op::Bnz);
    EXPECT_EQ(ops[3], Op::Nop);
    EXPECT_GE(st.slotsLeftNop, 1);
}

TEST(Scheduler, RefusesBranchTargetCandidate)
{
    const TargetInfo &t = TargetInfo::dlxe();
    // The instruction before the branch is a label target: moving it
    // would skip it for jumpers.
    auto v = items(t, R"(
main:
    mvi r2, 1
target:
    mvi r3, 2
    br target
    nop
)");
    schedule(v, t);
    // The label must still precede mvi r3.
    bool ok = false;
    for (size_t i = 0; i + 1 < v.size(); ++i) {
        if (v[i].kind == ItemKind::Label && v[i].name == "target") {
            ASSERT_EQ(v[i + 1].kind, ItemKind::Inst);
            EXPECT_EQ(v[i + 1].inst.op, Op::MvI);
            EXPECT_EQ(v[i + 1].inst.rd, 3);
            ok = true;
        }
    }
    EXPECT_TRUE(ok);
}

TEST(Scheduler, CallLinkRegisterBlocksRaUsers)
{
    const TargetInfo &t = TargetInfo::dlxe();
    // Candidate reads ra; jl writes ra: cannot move into the slot.
    auto v = items(t, R"(
main:
    mv r5, ra
    jl func
    nop
func:
    ret
    nop
)");
    const SchedStats st = schedule(v, t);
    const auto ops = opsOf(v);
    EXPECT_EQ(ops[0], Op::Mv);
    EXPECT_EQ(ops[1], Op::Jl);
    EXPECT_EQ(ops[2], Op::Nop);
    EXPECT_GE(st.slotsLeftNop, 1);
}

TEST(Scheduler, SeparatesLoadUsePairs)
{
    const TargetInfo &t = TargetInfo::dlxe();
    auto v = items(t, R"(
main:
    ld r2, 0(gp)
    add r3, r2, r2
    mvi r4, 7
stop:
    ret
    nop
)");
    const SchedStats st = schedule(v, t);
    EXPECT_EQ(st.loadsSeparated, 1);
    const auto ops = opsOf(v);
    EXPECT_EQ(ops[0], Op::Ld);
    EXPECT_EQ(ops[1], Op::MvI);  // hoisted between load and use
    EXPECT_EQ(ops[2], Op::Add);
}

TEST(Scheduler, KeepsDependentThirdInstruction)
{
    const TargetInfo &t = TargetInfo::dlxe();
    // The third instruction uses the use's result: no swap possible.
    auto v = items(t, R"(
main:
    ld r2, 0(gp)
    add r3, r2, r2
    add r4, r3, r3
stop:
    ret
    nop
)");
    const SchedStats st = schedule(v, t);
    EXPECT_EQ(st.loadsSeparated, 0);
    const auto ops = opsOf(v);
    EXPECT_EQ(ops[1], Op::Add);
}

TEST(Scheduler, StoresDoNotCrossLoads)
{
    const TargetInfo &t = TargetInfo::dlxe();
    // Candidate for the load shadow is a store: must not move above
    // a dependent-by-memory instruction.
    auto v = items(t, R"(
main:
    ld r2, 0(gp)
    st r2, 4(gp)
    st r5, 8(gp)
stop:
    ret
    nop
)");
    schedule(v, t);
    const auto ops = opsOf(v);
    // Both stores read/write memory; order preserved.
    EXPECT_EQ(ops[0], Op::Ld);
    EXPECT_EQ(ops[1], Op::St);
    EXPECT_EQ(ops[2], Op::St);
}

TEST(Scheduler, D16CompareBranchSlotRules)
{
    const TargetInfo &t = TargetInfo::d16();
    // cmp writes at (r0); bnz reads it: cmp cannot fill the slot.
    auto v = items(t, R"(
main:
    mvi r2, 1
    cmp.lt r2, r3
    bnz main
    nop
    ret
    nop
)");
    const SchedStats st = schedule(v, t);
    const auto ops = opsOf(v);
    EXPECT_EQ(ops[1], Op::Cmp);
    EXPECT_EQ(ops[2], Op::Bnz);
    EXPECT_EQ(ops[3], Op::Nop);
    // But the earlier mvi also cannot move (cmp sits between); the
    // slot stays a nop.
    EXPECT_GE(st.slotsLeftNop, 1);
}

} // namespace
