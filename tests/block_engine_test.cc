/**
 * @file
 * Differential gate for the block-compiled threaded-code engine.
 *
 * The engine's contract is bit-exactness against Machine::step: same
 * architectural results, same SimStats field by field, same recorded
 * D16T traces, same canonical sweep JSON — the only observable
 * difference allowed is speed. These tests run both dispatchers over
 * the whole workload suite and over seeded fallback scenarios (jumps
 * into pool data, mid-block entry, probe-attached runs, instruction
 * limits) and require equality everywhere.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "asm/assembler.hh"
#include "asm/parser.hh"
#include "core/replay/trace.hh"
#include "core/sweep/sweep.hh"
#include "core/toolchain.hh"
#include "core/workloads.hh"
#include "sim/block_engine.hh"
#include "sim/machine.hh"
#include "support/error.hh"

namespace
{

using namespace d16sim;
using d16sim::core::sweep::SweepEngine;

/** Every SimStats field, attributed individually on mismatch. */
void
expectStatsEqual(const sim::SimStats &a, const sim::SimStats &b,
                 const std::string &where)
{
    EXPECT_EQ(a.instructions, b.instructions) << where;
    EXPECT_EQ(a.loads, b.loads) << where;
    EXPECT_EQ(a.stores, b.stores) << where;
    EXPECT_EQ(a.loadInterlocks, b.loadInterlocks) << where;
    EXPECT_EQ(a.fpInterlocks, b.fpInterlocks) << where;
    EXPECT_EQ(a.branches, b.branches) << where;
    EXPECT_EQ(a.takenBranches, b.takenBranches) << where;
    EXPECT_EQ(a.fpOps, b.fpOps) << where;
    EXPECT_EQ(a.traps, b.traps) << where;
    EXPECT_EQ(a.branchBubbles, b.branchBubbles) << where;
    EXPECT_TRUE(a == b) << where;  // defaulted operator== agrees
}

assem::Image
buildAsm(const isa::TargetInfo &t, std::string_view src)
{
    assem::Assembler as(t);
    as.add(assem::parseAsm(t, src));
    return as.link();
}

/** Little-endian instruction word read straight from the image. */
uint32_t
imageWord(const assem::Image &img, uint32_t addr, int bytes)
{
    uint32_t v = 0;
    for (int i = 0; i < bytes; ++i)
        v |= static_cast<uint32_t>(img.bytes[addr - img.textBase + i])
             << (8 * i);
    return v;
}

/** Run one image through step dispatch and block dispatch and require
 *  identical measurements; returns the block machine for inspection. */
std::unique_ptr<sim::Machine>
runBothAndCompare(const assem::Image &img, const std::string &where,
                  sim::MachineConfig config = {})
{
    sim::Machine stepM(img, config);
    stepM.run();

    auto blockM = std::make_unique<sim::Machine>(img, config);
    blockM->setBlockProgram(core::buildBlockProgram(img));
    blockM->run();

    EXPECT_EQ(stepM.halted(), blockM->halted()) << where;
    EXPECT_EQ(stepM.output(), blockM->output()) << where;
    EXPECT_EQ(stepM.pc(), blockM->pc()) << where;
    for (int r = 0; r < 16; ++r)
        EXPECT_EQ(stepM.reg(r), blockM->reg(r)) << where << " r" << r;
    expectStatsEqual(stepM.stats(), blockM->stats(), where);
    return blockM;
}

/** Minimal per-instruction probe: any non-TraceSink probe must force
 *  the machine back to pure step dispatch. */
class CountingProbe : public sim::Probe
{
  public:
    void onIFetch(uint32_t) override { ++fetches_; }
    uint64_t fetches() const { return fetches_; }

  private:
    uint64_t fetches_ = 0;
};

// ----- whole-suite differential ---------------------------------------

TEST(BlockEngine, SmokeMatrixByteIdenticalJson)
{
    core::sweep::ResultStore onStore, offStore;

    SweepEngine on(onStore, 4);
    on.setBlockEngine(true);
    on.add(core::sweep::smokeMatrix());
    on.run();

    SweepEngine off(offStore, 4);
    off.setBlockEngine(false);
    off.add(core::sweep::smokeMatrix());
    off.run();

    const std::string onJson =
        core::sweep::sweepJson(onStore, nullptr).dump(2);
    const std::string offJson =
        core::sweep::sweepJson(offStore, nullptr).dump(2);
    EXPECT_EQ(onJson, offJson);
}

TEST(BlockEngine, WorkloadStatsAndTracesIdentical)
{
    const std::vector<mc::CompileOptions> variants = {
        mc::CompileOptions::d16(),
        mc::CompileOptions::dlxe(32, true),
    };
    for (const core::Workload &w : core::workloadSuite()) {
        for (const mc::CompileOptions &opts : variants) {
            const std::string where =
                w.name + " " + std::string(opts.name());
            const assem::Image img = core::build(w.source, opts);
            auto predecoded =
                std::make_shared<const sim::DecodedText>(img);
            auto blocks = core::buildBlockProgram(img, predecoded);

            // Step vs block, probe-less.
            const core::RunMeasurement stepRun =
                core::run(img, {}, {}, predecoded);
            const core::RunMeasurement blockRun =
                core::run(img, {}, {}, predecoded, blocks);
            EXPECT_EQ(stepRun.output, blockRun.output) << where;
            EXPECT_EQ(stepRun.exitStatus, blockRun.exitStatus) << where;
            expectStatsEqual(stepRun.stats, blockRun.stats, where);

            // Step vs block trace capture: byte-identical D16T files.
            const core::replay::Trace stepTrace =
                core::replay::capture(img, predecoded);
            const core::replay::Trace blockTrace =
                core::replay::capture(img, predecoded, {}, blocks);
            EXPECT_EQ(stepTrace.serialize(), blockTrace.serialize())
                << where;
        }
    }
}

TEST(BlockEngine, EngineActuallyDispatchesBlocks)
{
    const core::Workload &w = core::workload("queens");
    const assem::Image img =
        core::build(w.source, mc::CompileOptions::d16());
    sim::Machine m(img);
    m.setBlockProgram(core::buildBlockProgram(img));
    m.run();
    ASSERT_TRUE(m.halted());
    // Nearly everything should retire through compiled blocks; the
    // remainder is delay-slot/pool stepping around indirect calls.
    EXPECT_GT(m.blockInstructions(),
              m.stats().instructions * 9 / 10);
}

TEST(BlockEngine, TranslationCoversCfg)
{
    const core::Workload &w = core::workload("towers");
    for (const auto &opts : {mc::CompileOptions::d16(),
                             mc::CompileOptions::dlxe(16, false)}) {
        const assem::Image img = core::build(w.source, opts);
        auto blocks = core::buildBlockProgram(img);
        EXPECT_GT(blocks->blockCount(), 0u) << opts.name();
        EXPECT_GT(blocks->uopCount(), 0u) << opts.name();
        // NeedsStep blocks are the rare edges (terminator without a
        // slot before a pool, transfers inside slots), never the bulk.
        EXPECT_LT(blocks->needsStepCount(), blocks->blockCount() / 2)
            << opts.name();
    }
}

// ----- seeded fallback scenarios --------------------------------------

TEST(BlockEngine, FallbackJumpIntoPoolDataDLXe)
{
    const isa::TargetInfo &t = isa::TargetInfo::dlxe();
    // Steal real encodings (jr ra; nop) to plant as in-text "data".
    const assem::Image donor = buildAsm(t, "main:\n    ret\n    nop\n");
    const uint32_t retWord = imageWord(donor, donor.entry, 4);
    const uint32_t nopWord = imageWord(donor, donor.entry + 4, 4);

    // The straight-line block falls off its end into .word data the
    // CFG never claimed; both dispatchers must execute it raw.
    const std::string src =
        "main:\n"
        "    mvi r2, 7\n"
        "    mvi r3, 1\n"
        "data:\n"
        "    .word " + std::to_string(retWord) + "\n"
        "    .word " + std::to_string(nopWord) + "\n";
    const assem::Image img = buildAsm(t, src);
    auto m = runBothAndCompare(img, "fall into pool data");
    EXPECT_EQ(m->reg(2), 7u);
    EXPECT_EQ(m->stats().instructions, 4u);
    // The opening block ran compiled; the pool words were stepped.
    EXPECT_EQ(m->blockInstructions(), 2u);
}

TEST(BlockEngine, FallbackJumpIntoPoolDataD16)
{
    const isa::TargetInfo &t = isa::TargetInfo::d16();
    const assem::Image donor = buildAsm(t, "main:\n    ret\n    nop\n");
    const uint32_t retHalf = imageWord(donor, donor.entry, 2);
    const uint32_t nopHalf = imageWord(donor, donor.entry + 2, 2);

    // An indirect jump INTO a constant pool: the target pc is not an
    // instruction site, so no block claims it and step() decodes the
    // raw halfwords, exactly as without the engine.
    const std::string src =
        "    .align 4\n"
        "paddr:\n"
        "    .word pool\n"
        "main:\n"
        "    mvi r2, 9\n"
        "    ldc paddr\n"
        "    jr at\n"
        "    nop\n"
        "pool:\n"
        "    .half " + std::to_string(retHalf) + "\n"
        "    .half " + std::to_string(nopHalf) + "\n";
    const assem::Image img = buildAsm(t, src);
    auto m = runBothAndCompare(img, "jump into pool data");
    EXPECT_EQ(m->reg(2), 9u);
    EXPECT_TRUE(m->halted());
}

TEST(BlockEngine, FallbackUnclaimedMidBlockPc)
{
    const isa::TargetInfo &t = isa::TargetInfo::dlxe();
    // f returns past the return-point leader: the landing pc is inside
    // a block but is not a block start, so dispatch punts to step()
    // until control reaches a claimed leader again.
    const std::string src = R"(
main:
    jl f
    nop
    mvi r3, 1
    mvi r4, 2
    mvi r2, 5
    mvi r1, 0
    ret
    nop
f:
    addi r1, r1, 4
    jr r1
    nop
)";
    const assem::Image img = buildAsm(t, src);
    auto m = runBothAndCompare(img, "unclaimed mid-block pc");
    EXPECT_EQ(m->reg(2), 5u);
    EXPECT_EQ(m->reg(4), 2u);
    EXPECT_EQ(m->reg(3), 0u);  // skipped by the off-by-one return
    // Some instructions ran compiled, some stepped — and the counts
    // reconcile.
    EXPECT_GT(m->blockInstructions(), 0u);
    EXPECT_LT(m->blockInstructions(), m->stats().instructions);
}

TEST(BlockEngine, FallbackProbeAttached)
{
    const core::Workload &w = core::workload("towers");
    const assem::Image img =
        core::build(w.source, mc::CompileOptions::dlxe(16, false));
    auto blocks = core::buildBlockProgram(img);

    sim::Machine stepM(img);
    stepM.run();

    // A per-instruction probe that is not a TraceSink disables block
    // dispatch entirely; results match the probe-less step run.
    CountingProbe probe;
    sim::Machine probeM(img);
    probeM.setBlockProgram(blocks);
    probeM.addProbe(&probe);
    probeM.run();

    EXPECT_EQ(probeM.blockInstructions(), 0u);
    EXPECT_EQ(probe.fetches(), stepM.stats().instructions);
    EXPECT_EQ(probeM.output(), stepM.output());
    expectStatsEqual(probeM.stats(), stepM.stats(), "probe attached");
}

TEST(BlockEngine, InstructionLimitFiresAtSamePoint)
{
    const isa::TargetInfo &t = isa::TargetInfo::dlxe();
    const std::string src = R"(
main:
loop:
    addi r2, r2, 1
    j loop
    nop
)";
    const assem::Image img = buildAsm(t, src);
    sim::MachineConfig config;
    config.maxInstructions = 100;

    sim::Machine stepM(img, config);
    EXPECT_THROW(stepM.run(), FatalError);

    sim::Machine blockM(img, config);
    blockM.setBlockProgram(core::buildBlockProgram(img));
    EXPECT_THROW(blockM.run(), FatalError);

    expectStatsEqual(stepM.stats(), blockM.stats(), "instruction limit");
    EXPECT_EQ(stepM.reg(2), blockM.reg(2));
}

} // namespace
