/**
 * @file
 * Benchmark-suite tests: every workload compiles, runs, and produces
 * identical output on all five machine variants; aggregate ratios
 * land in the neighbourhoods the paper reports.
 */

#include <gtest/gtest.h>

#include "core/toolchain.hh"
#include "core/workloads.hh"

namespace
{

using namespace d16sim;
using namespace d16sim::core;
using mc::CompileOptions;

const CompileOptions kVariants[] = {
    CompileOptions::d16(),
    CompileOptions::dlxe(16, false),
    CompileOptions::dlxe(16, true),
    CompileOptions::dlxe(32, false),
    CompileOptions::dlxe(32, true),
};

TEST(Workloads, SuiteShape)
{
    const auto &suite = workloadSuite();
    EXPECT_EQ(suite.size(), 15u);
    EXPECT_EQ(suite[0].name, "ackermann");
    EXPECT_EQ(workload("towers").name, "towers");
    EXPECT_THROW(workload("nope"), FatalError);
    const auto cacheNames = cacheBenchmarkNames();
    ASSERT_EQ(cacheNames.size(), 3u);
    for (const auto &n : cacheNames)
        EXPECT_TRUE(workload(n).cacheBenchmark);
}

class WorkloadRuns : public ::testing::TestWithParam<int>
{};

TEST_P(WorkloadRuns, IdenticalOutputOnAllVariants)
{
    const Workload &w = workloadSuite()[GetParam()];
    SCOPED_TRACE(w.name);

    std::string reference;
    uint64_t d16Path = 0, dlxePath = 0;
    uint32_t d16Size = 0, dlxeSize = 0;
    for (const CompileOptions &opts : kVariants) {
        SCOPED_TRACE(opts.name());
        const RunMeasurement m = buildAndRun(w.source, opts);
        EXPECT_EQ(m.exitStatus, 0) << opts.name();
        EXPECT_FALSE(m.output.empty());
        if (reference.empty())
            reference = m.output;
        else
            EXPECT_EQ(m.output, reference) << opts.name();
        if (opts.isa == isa::IsaKind::D16) {
            d16Path = m.stats.instructions;
            d16Size = m.sizeBytes;
        }
        if (opts.isa == isa::IsaKind::DLXe && opts.gprCount == 32 &&
            opts.threeAddress) {
            dlxePath = m.stats.instructions;
            dlxeSize = m.sizeBytes;
        }
    }

    // Path length sanity: the workload must be substantial and DLXe
    // must not be pathologically slower than D16.
    EXPECT_GT(d16Path, 10000u) << w.name;
    EXPECT_LT(dlxePath, d16Path * 11 / 10) << w.name;
    // Sizes include (identical) data; text favors D16.
    EXPECT_LT(d16Size, dlxeSize) << w.name;
}

INSTANTIATE_TEST_SUITE_P(
    Suite, WorkloadRuns, ::testing::Range(0, 15),
    [](const ::testing::TestParamInfo<int> &info) {
        return workloadSuite()[info.param].name;
    });

TEST(Workloads, SpotOutputs)
{
    // Fixed, hand-checkable outputs.
    const auto ack = buildAndRun(workload("ackermann").source,
                                 CompileOptions::dlxe());
    EXPECT_EQ(ack.output, "ack(3,5)=253\n");
    const auto tow = buildAndRun(workload("towers").source,
                                 CompileOptions::d16());
    EXPECT_EQ(tow.output, "moves=65535\n");
    const auto q = buildAndRun(workload("queens").source,
                               CompileOptions::dlxe(16, false));
    EXPECT_EQ(q.output, "queens=92\n");
}

TEST(Workloads, AverageDensityNearPaper)
{
    // Paper Table 6: average DLXe/D16 static size ratio ~1.5-1.6.
    double ratioSum = 0;
    int n = 0;
    for (const Workload &w : workloadSuite()) {
        const auto d16 = build(w.source, CompileOptions::d16());
        const auto dlxe = build(w.source, CompileOptions::dlxe());
        // Compare text only to avoid data dilution in this check.
        ratioSum += static_cast<double>(dlxe.textSize) / d16.textSize;
        ++n;
    }
    const double avg = ratioSum / n;
    EXPECT_GT(avg, 1.3);
    EXPECT_LT(avg, 2.0);
}

TEST(Workloads, CacheBenchmarksHaveLargeFootprints)
{
    for (const auto &name : cacheBenchmarkNames()) {
        const auto img = build(workload(name).source,
                               CompileOptions::dlxe());
        EXPECT_GT(img.textSize, 8000u) << name;
    }
}

} // namespace
