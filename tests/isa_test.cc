/**
 * @file
 * Unit and property tests for the D16 and DLXe instruction codecs.
 *
 * The central property is encode-decode round trip: for every legal
 * operand combination, decoding the encoded bits reproduces the
 * semantic instruction (op, cond, registers with D16's implicit
 * operands made explicit, immediates). Negative tests check that
 * operands the paper says are inexpressible are rejected.
 */

#include <gtest/gtest.h>

#include "isa/codec.hh"
#include "isa/disasm.hh"
#include "support/error.hh"

namespace
{

using namespace d16sim;
using namespace d16sim::isa;

const TargetInfo &kD16 = TargetInfo::d16();
const TargetInfo &kDLXe = TargetInfo::dlxe();

// ---------------------------------------------------------------------
// Cond
// ---------------------------------------------------------------------

TEST(Cond, Names)
{
    EXPECT_EQ(condName(Cond::Lt), "lt");
    EXPECT_EQ(condName(Cond::Geu), "geu");
    Cond c;
    EXPECT_TRUE(parseCond("leu", c));
    EXPECT_EQ(c, Cond::Leu);
    EXPECT_FALSE(parseCond("bogus", c));
}

TEST(Cond, NegateIsInvolution)
{
    for (int i = 0; i < numConds; ++i) {
        const Cond c = static_cast<Cond>(i);
        EXPECT_EQ(negateCond(negateCond(c)), c);
    }
}

TEST(Cond, SwapIsInvolution)
{
    for (int i = 0; i < numConds; ++i) {
        const Cond c = static_cast<Cond>(i);
        EXPECT_EQ(swapCond(swapCond(c)), c);
    }
}

TEST(Cond, EvalAgreesWithSwapAndNegate)
{
    const uint32_t vals[] = {0u, 1u, 5u, 0x7fffffffu, 0x80000000u,
                             0xffffffffu};
    for (int i = 0; i < numConds; ++i) {
        const Cond c = static_cast<Cond>(i);
        for (uint32_t a : vals) {
            for (uint32_t b : vals) {
                EXPECT_EQ(evalCond(c, a, b), evalCond(swapCond(c), b, a))
                    << condName(c) << " " << a << " " << b;
                EXPECT_EQ(evalCond(c, a, b), !evalCond(negateCond(c), a, b))
                    << condName(c) << " " << a << " " << b;
            }
        }
    }
}

TEST(Cond, SignedVsUnsigned)
{
    EXPECT_TRUE(evalCond(Cond::Lt, 0xffffffffu, 0));   // -1 < 0 signed
    EXPECT_FALSE(evalCond(Cond::Ltu, 0xffffffffu, 0)); // max > 0 unsigned
    EXPECT_TRUE(evalCond(Cond::Gtu, 0xffffffffu, 0));
    EXPECT_TRUE(evalCond(Cond::Ge, 5, 5));
    EXPECT_FALSE(evalCond(Cond::Gt, 5, 5));
}

TEST(Cond, D16Subset)
{
    EXPECT_TRUE(d16HasCond(Cond::Lt));
    EXPECT_TRUE(d16HasCond(Cond::Ne));
    EXPECT_FALSE(d16HasCond(Cond::Gt));
    EXPECT_FALSE(d16HasCond(Cond::Geu));
}

// ---------------------------------------------------------------------
// Op metadata
// ---------------------------------------------------------------------

TEST(Operation, NamesRoundTrip)
{
    for (int i = 0; i < numOps; ++i) {
        const Op op = static_cast<Op>(i);
        Op parsed;
        ASSERT_TRUE(parseOp(opName(op), parsed)) << opName(op);
        EXPECT_EQ(parsed, op);
    }
    Op out;
    EXPECT_FALSE(parseOp("frobnicate", out));
}

TEST(Operation, Classes)
{
    EXPECT_EQ(opClass(Op::Add), OpClass::IntAlu);
    EXPECT_EQ(opClass(Op::AddI), OpClass::IntAluImm);
    EXPECT_EQ(opClass(Op::Ld), OpClass::Load);
    EXPECT_EQ(opClass(Op::Stb), OpClass::Store);
    EXPECT_EQ(opClass(Op::Ldc), OpClass::LoadConst);
    EXPECT_EQ(opClass(Op::Bz), OpClass::Branch);
    EXPECT_EQ(opClass(Op::Jlr), OpClass::Jump);
    EXPECT_EQ(opClass(Op::FDivD), OpClass::FpAlu);
    EXPECT_EQ(opClass(Op::CvtSfSi), OpClass::FpConvert);
    EXPECT_EQ(opClass(Op::MifH), OpClass::FpMove);
}

TEST(Operation, IsaExclusives)
{
    EXPECT_TRUE(isD16Only(Op::Ldc));
    EXPECT_FALSE(isD16Only(Op::Ld));
    for (Op op : {Op::AndI, Op::OrI, Op::XorI, Op::MvHI, Op::CmpI,
                  Op::J, Op::Jl}) {
        EXPECT_TRUE(isDLXeOnly(op)) << opName(op);
        EXPECT_FALSE(kD16.hasOp(op)) << opName(op);
        EXPECT_TRUE(kDLXe.hasOp(op)) << opName(op);
    }
    EXPECT_TRUE(kD16.hasOp(Op::Ldc));
    EXPECT_FALSE(kDLXe.hasOp(Op::Ldc));
}

TEST(Operation, MemSizes)
{
    EXPECT_EQ(memAccessSize(Op::Ld), 4);
    EXPECT_EQ(memAccessSize(Op::St), 4);
    EXPECT_EQ(memAccessSize(Op::Ldhu), 2);
    EXPECT_EQ(memAccessSize(Op::Stb), 1);
    EXPECT_EQ(memAccessSize(Op::Ldc), 4);
    EXPECT_THROW(memAccessSize(Op::Add), PanicError);
}

// ---------------------------------------------------------------------
// TargetInfo
// ---------------------------------------------------------------------

TEST(Target, BasicShape)
{
    EXPECT_EQ(kD16.insnBytes(), 2);
    EXPECT_EQ(kDLXe.insnBytes(), 4);
    EXPECT_EQ(kD16.numGpr(), 16);
    EXPECT_EQ(kDLXe.numGpr(), 32);
    EXPECT_FALSE(kD16.threeAddress());
    EXPECT_TRUE(kDLXe.threeAddress());
    EXPECT_FALSE(kD16.r0IsZero());
    EXPECT_TRUE(kDLXe.r0IsZero());
    EXPECT_EQ(kD16.spReg(), 15);
    EXPECT_EQ(kD16.gpReg(), 14);
    EXPECT_EQ(kDLXe.spReg(), 31);
    EXPECT_EQ(kDLXe.gpReg(), 30);
    EXPECT_EQ(kD16.raReg(), 1);
}

TEST(Target, ImmediateLegality)
{
    // D16: 5-bit unsigned ALU immediates.
    EXPECT_TRUE(kD16.aluImmFits(Op::AddI, 0));
    EXPECT_TRUE(kD16.aluImmFits(Op::AddI, 31));
    EXPECT_FALSE(kD16.aluImmFits(Op::AddI, 32));
    EXPECT_FALSE(kD16.aluImmFits(Op::AddI, -1));
    EXPECT_FALSE(kD16.aluImmFits(Op::AndI, 1));  // no andi at all
    // DLXe: 16-bit.
    EXPECT_TRUE(kDLXe.aluImmFits(Op::AddI, -32768));
    EXPECT_TRUE(kDLXe.aluImmFits(Op::AddI, 32767));
    EXPECT_FALSE(kDLXe.aluImmFits(Op::AddI, 32768));
    EXPECT_TRUE(kDLXe.aluImmFits(Op::AndI, 0xffff));
    EXPECT_FALSE(kDLXe.aluImmFits(Op::AndI, 0x10000));
    // MVI: 9-bit signed vs 16-bit signed.
    EXPECT_TRUE(kD16.mviImmFits(-256));
    EXPECT_TRUE(kD16.mviImmFits(255));
    EXPECT_FALSE(kD16.mviImmFits(256));
    EXPECT_TRUE(kDLXe.mviImmFits(-32768));
}

TEST(Target, MemOffsets)
{
    EXPECT_TRUE(kD16.memOffsetFits(Op::Ld, 0));
    EXPECT_TRUE(kD16.memOffsetFits(Op::Ld, 124));
    EXPECT_FALSE(kD16.memOffsetFits(Op::Ld, 128));
    EXPECT_FALSE(kD16.memOffsetFits(Op::Ld, 6));   // unaligned
    EXPECT_FALSE(kD16.memOffsetFits(Op::Ld, -4));  // negative
    EXPECT_FALSE(kD16.memOffsetFits(Op::Ldb, 1));  // not offsettable
    EXPECT_TRUE(kD16.memOffsetFits(Op::Ldb, 0));
    EXPECT_TRUE(kDLXe.memOffsetFits(Op::Ldb, -32768));
    EXPECT_TRUE(kDLXe.memOffsetFits(Op::St, 32767));
    EXPECT_FALSE(kDLXe.memOffsetFits(Op::St, 40000));
}

TEST(Target, BranchAndLdcRanges)
{
    EXPECT_TRUE(kD16.branchOffsetFits(Op::Bz, -1024));
    EXPECT_TRUE(kD16.branchOffsetFits(Op::Bz, 1022));
    EXPECT_FALSE(kD16.branchOffsetFits(Op::Bz, 1024));
    EXPECT_FALSE(kD16.branchOffsetFits(Op::Bz, 7));  // odd
    // Unconditional br reaches twice as far (Thumb-style).
    EXPECT_TRUE(kD16.branchOffsetFits(Op::Br, -2048));
    EXPECT_TRUE(kD16.branchOffsetFits(Op::Br, 2046));
    EXPECT_FALSE(kD16.branchOffsetFits(Op::Br, 2048));
    EXPECT_TRUE(kDLXe.branchOffsetFits(Op::Bz, -32768));
    EXPECT_FALSE(kDLXe.branchOffsetFits(Op::Bz, 2));  // word aligned
    EXPECT_TRUE(kD16.ldcOffsetFits(-4096));
    EXPECT_TRUE(kD16.ldcOffsetFits(4092));
    EXPECT_FALSE(kD16.ldcOffsetFits(4096));
    EXPECT_FALSE(kDLXe.ldcOffsetFits(0));
    EXPECT_TRUE(kDLXe.jumpOffsetFits(1 << 20));
    EXPECT_FALSE(kD16.jumpOffsetFits(4));
}

TEST(Target, RegisterNames)
{
    EXPECT_EQ(kD16.regName(15), "sp");
    EXPECT_EQ(kD16.regName(14), "gp");
    EXPECT_EQ(kD16.regName(1), "ra");
    EXPECT_EQ(kD16.regName(0), "at");
    EXPECT_EQ(kD16.regName(7), "r7");
    EXPECT_EQ(kDLXe.regName(0), "r0");
    EXPECT_EQ(kDLXe.regName(31), "sp");
    int r;
    EXPECT_TRUE(kD16.parseReg("sp", r));
    EXPECT_EQ(r, 15);
    EXPECT_TRUE(kDLXe.parseReg("r17", r));
    EXPECT_EQ(r, 17);
    EXPECT_FALSE(kD16.parseReg("r16", r));  // out of range for D16
    EXPECT_FALSE(kD16.parseReg("x3", r));
    EXPECT_TRUE(kD16.parseFreg("f15", r));
    EXPECT_EQ(r, 15);
    EXPECT_FALSE(kD16.parseFreg("f16", r));
    EXPECT_TRUE(kDLXe.parseFreg("f31", r));
}

// ---------------------------------------------------------------------
// Codec round trips
// ---------------------------------------------------------------------

void
expectRoundTrip(const TargetInfo &t, const AsmInst &in, Op op, Cond cond,
                int rd, int rs1, int rs2, int32_t imm)
{
    const uint32_t w = encode(t, in);
    const DecodedInst d = decode(t, w);
    EXPECT_EQ(d.op, op) << opName(op) << " got " << opName(d.op);
    if (hasCond(op)) {
        EXPECT_EQ(d.cond, cond);
    }
    EXPECT_EQ(int{d.rd}, rd) << opName(op);
    EXPECT_EQ(int{d.rs1}, rs1) << opName(op);
    EXPECT_EQ(int{d.rs2}, rs2) << opName(op);
    EXPECT_EQ(d.imm, imm) << opName(op);
}

TEST(D16Codec, AluRegSweep)
{
    for (Op op : {Op::Add, Op::Sub, Op::And, Op::Or, Op::Xor, Op::Shl,
                  Op::Shr, Op::Shra}) {
        for (int rd = 0; rd < 16; rd += 3) {
            for (int rs2 = 0; rs2 < 16; rs2 += 5) {
                expectRoundTrip(kD16, AsmInst::r3(op, rd, rd, rs2),
                                op, Cond::Eq, rd, rd, rs2, 0);
            }
        }
    }
}

TEST(D16Codec, TwoAddressEnforced)
{
    EXPECT_THROW(d16Encode(AsmInst::r3(Op::Add, 3, 4, 5)), FatalError);
    EXPECT_THROW(d16Encode(AsmInst::ri(Op::AddI, 3, 4, 1)), FatalError);
    EXPECT_THROW(d16Encode(AsmInst::r3(Op::FAddS, 1, 2, 3)), FatalError);
}

TEST(D16Codec, UnaryOps)
{
    expectRoundTrip(kD16, AsmInst::ri(Op::Neg, 4, 9, 0),
                    Op::Neg, Cond::Eq, 4, 9, 0, 0);
    expectRoundTrip(kD16, AsmInst::ri(Op::Inv, 2, 2, 0),
                    Op::Inv, Cond::Eq, 2, 2, 0, 0);
    expectRoundTrip(kD16, AsmInst::ri(Op::Mv, 15, 3, 0),
                    Op::Mv, Cond::Eq, 15, 3, 0, 0);
}

TEST(D16Codec, AluImmSweep)
{
    for (Op op : {Op::AddI, Op::SubI, Op::ShlI, Op::ShrI, Op::ShraI}) {
        for (int64_t imm : {0, 1, 15, 31}) {
            expectRoundTrip(kD16, AsmInst::ri(op, 7, 7, imm),
                            op, Cond::Eq, 7, 7, 0,
                            static_cast<int32_t>(imm));
        }
        EXPECT_THROW(d16Encode(AsmInst::ri(op, 7, 7, 32)), FatalError);
        EXPECT_THROW(d16Encode(AsmInst::ri(op, 7, 7, -1)), FatalError);
    }
}

TEST(D16Codec, MviSweep)
{
    for (int64_t imm : {-256, -1, 0, 1, 100, 255}) {
        expectRoundTrip(kD16, AsmInst::ri(Op::MvI, 5, -1, imm),
                        Op::MvI, Cond::Eq, 5, 0, 0,
                        static_cast<int32_t>(imm));
    }
    EXPECT_THROW(d16Encode(AsmInst::ri(Op::MvI, 5, -1, 256)), FatalError);
    EXPECT_THROW(d16Encode(AsmInst::ri(Op::MvI, 5, -1, -257)), FatalError);
}

TEST(D16Codec, CompareSweep)
{
    for (Cond c : {Cond::Lt, Cond::Ltu, Cond::Le, Cond::Leu, Cond::Eq,
                   Cond::Ne}) {
        expectRoundTrip(kD16, AsmInst::cmp(c, 0, 3, 9),
                        Op::Cmp, c, 0, 3, 9, 0);
    }
    // Dest must be r0; conds beyond the six are rejected.
    EXPECT_THROW(d16Encode(AsmInst::cmp(Cond::Eq, 2, 3, 9)), FatalError);
    EXPECT_THROW(d16Encode(AsmInst::cmp(Cond::Gt, 0, 3, 9)), FatalError);
    EXPECT_THROW(d16Encode(AsmInst::cmp(Cond::Geu, 0, 3, 9)), FatalError);
}

TEST(D16Codec, WordMemorySweep)
{
    for (int off = 0; off <= 124; off += 4) {
        expectRoundTrip(kD16, AsmInst::ri(Op::Ld, 3, 15, off),
                        Op::Ld, Cond::Eq, 3, 15, 0, off);
        AsmInst st;
        st.op = Op::St;
        st.rs1 = 14;
        st.rs2 = 6;
        st.imm = off;
        expectRoundTrip(kD16, st, Op::St, Cond::Eq, 0, 14, 6, off);
    }
    EXPECT_THROW(d16Encode(AsmInst::ri(Op::Ld, 3, 15, 128)), FatalError);
    EXPECT_THROW(d16Encode(AsmInst::ri(Op::Ld, 3, 15, 2)), FatalError);
    EXPECT_THROW(d16Encode(AsmInst::ri(Op::Ld, 3, 15, -4)), FatalError);
}

TEST(D16Codec, SubWordNotOffsettable)
{
    for (Op op : {Op::Ldh, Op::Ldhu, Op::Ldb, Op::Ldbu}) {
        expectRoundTrip(kD16, AsmInst::ri(op, 3, 7, 0),
                        op, Cond::Eq, 3, 7, 0, 0);
        EXPECT_THROW(d16Encode(AsmInst::ri(op, 3, 7, 4)), FatalError);
    }
    AsmInst sth;
    sth.op = Op::Sth;
    sth.rs1 = 7;
    sth.rs2 = 3;
    expectRoundTrip(kD16, sth, Op::Sth, Cond::Eq, 0, 7, 3, 0);
    sth.imm = 2;
    EXPECT_THROW(d16Encode(sth), FatalError);
}

TEST(D16Codec, LdcSweep)
{
    for (int32_t delta : {-4096, -4, 0, 4, 4092}) {
        AsmInst ldc;
        ldc.op = Op::Ldc;
        ldc.imm = delta;
        expectRoundTrip(kD16, ldc, Op::Ldc, Cond::Eq, 0, 0, 0, delta);
    }
    AsmInst bad;
    bad.op = Op::Ldc;
    bad.imm = 4096;
    EXPECT_THROW(d16Encode(bad), FatalError);
    bad.imm = -4100;
    EXPECT_THROW(d16Encode(bad), FatalError);
    bad.imm = 2;  // unaligned
    EXPECT_THROW(d16Encode(bad), FatalError);
}

TEST(D16Codec, BranchSweep)
{
    for (Op op : {Op::Bz, Op::Bnz}) {
        for (int32_t delta : {-1024, -2, 0, 2, 1022}) {
            AsmInst b;
            b.op = op;
            b.rs1 = 0;
            b.imm = delta;
            expectRoundTrip(kD16, b, op, Cond::Eq, 0, 0, 0, delta);
        }
    }
    for (int32_t delta : {-2048, -2, 0, 2, 2046}) {
        AsmInst b;
        b.op = Op::Br;
        b.imm = delta;
        expectRoundTrip(kD16, b, Op::Br, Cond::Eq, 0, 0, 0, delta);
    }
    AsmInst far;
    far.op = Op::Bz;
    far.imm = 1024;
    EXPECT_THROW(d16Encode(far), FatalError);
    far.op = Op::Br;
    far.imm = 2048;
    EXPECT_THROW(d16Encode(far), FatalError);
    far.imm = -2050;
    EXPECT_THROW(d16Encode(far), FatalError);
    // Conditional branches test r0 only.
    AsmInst bz;
    bz.op = Op::Bz;
    bz.rs1 = 4;
    bz.imm = 0;
    EXPECT_THROW(d16Encode(bz), FatalError);
}

TEST(D16Codec, Jumps)
{
    expectRoundTrip(kD16, AsmInst::ri(Op::Jr, -1, 9, 0),
                    Op::Jr, Cond::Eq, 0, 9, 0, 0);
    expectRoundTrip(kD16, AsmInst::ri(Op::Jlr, -1, 2, 0),
                    Op::Jlr, Cond::Eq, 1, 2, 0, 0);
    expectRoundTrip(kD16, AsmInst::ri(Op::Jrz, -1, 3, 0),
                    Op::Jrz, Cond::Eq, 0, 3, 0, 0);
    expectRoundTrip(kD16, AsmInst::ri(Op::Jrnz, -1, 3, 0),
                    Op::Jrnz, Cond::Eq, 0, 3, 0, 0);
    // No direct jumps on D16.
    AsmInst j;
    j.op = Op::J;
    EXPECT_THROW(d16Encode(j), FatalError);
}

TEST(D16Codec, FpOps)
{
    for (Op op : {Op::FAddS, Op::FAddD, Op::FSubS, Op::FSubD, Op::FMulS,
                  Op::FMulD, Op::FDivS, Op::FDivD}) {
        expectRoundTrip(kD16, AsmInst::r3(op, 3, 3, 11),
                        op, Cond::Eq, 3, 3, 11, 0);
    }
    expectRoundTrip(kD16, AsmInst::ri(Op::FNegD, 2, 5, 0),
                    Op::FNegD, Cond::Eq, 2, 5, 0, 0);
    expectRoundTrip(kD16, AsmInst::ri(Op::FMv, 8, 1, 0),
                    Op::FMv, Cond::Eq, 8, 1, 0, 0);
    for (Op op : {Op::CvtSiSf, Op::CvtSiDf, Op::CvtSfDf, Op::CvtDfSf,
                  Op::CvtSfSi, Op::CvtDfSi}) {
        expectRoundTrip(kD16, AsmInst::ri(op, 4, 12, 0),
                        op, Cond::Eq, 4, 12, 0, 0);
    }
}

TEST(D16Codec, FpCompares)
{
    for (Op op : {Op::FCmpS, Op::FCmpD}) {
        for (Cond c : {Cond::Lt, Cond::Le, Cond::Eq}) {
            AsmInst i = AsmInst::r3(op, -1, 4, 7);
            i.cond = c;
            expectRoundTrip(kD16, i, op, c, 0, 4, 7, 0);
        }
        AsmInst bad = AsmInst::r3(op, -1, 4, 7);
        bad.cond = Cond::Ne;
        EXPECT_THROW(d16Encode(bad), FatalError);
    }
}

TEST(D16Codec, FpuGprMoves)
{
    expectRoundTrip(kD16, AsmInst::ri(Op::MifL, 3, 9, 0),
                    Op::MifL, Cond::Eq, 3, 9, 0, 0);
    expectRoundTrip(kD16, AsmInst::ri(Op::MifH, 3, 9, 0),
                    Op::MifH, Cond::Eq, 3, 9, 0, 0);
    expectRoundTrip(kD16, AsmInst::ri(Op::MfiL, 9, 3, 0),
                    Op::MfiL, Cond::Eq, 9, 3, 0, 0);
    expectRoundTrip(kD16, AsmInst::ri(Op::MfiH, 9, 3, 0),
                    Op::MfiH, Cond::Eq, 9, 3, 0, 0);
}

TEST(D16Codec, TrapRdsrNop)
{
    AsmInst t;
    t.op = Op::Trap;
    t.imm = 5;
    expectRoundTrip(kD16, t, Op::Trap, Cond::Eq, 0, 0, 0, 5);
    t.imm = 32;
    EXPECT_THROW(d16Encode(t), FatalError);
    expectRoundTrip(kD16, AsmInst::ri(Op::Rdsr, 6, -1, 0),
                    Op::Rdsr, Cond::Eq, 6, 0, 0, 0);
    // Nop lowers to mv r0, r0.
    const DecodedInst d = d16Decode(d16Encode(AsmInst::nop()));
    EXPECT_EQ(d.op, Op::Mv);
    EXPECT_EQ(d.rd, 0);
    EXPECT_EQ(d.rs1, 0);
}

TEST(D16Codec, DLXeOnlyOpsRejected)
{
    EXPECT_THROW(d16Encode(AsmInst::ri(Op::AndI, 2, 2, 1)), FatalError);
    EXPECT_THROW(d16Encode(AsmInst::ri(Op::MvHI, 2, -1, 1)), FatalError);
    AsmInst cmpi = AsmInst::ri(Op::CmpI, 2, 3, 1);
    EXPECT_THROW(d16Encode(cmpi), FatalError);
}

TEST(D16Codec, ReservedEncodingsRejected)
{
    // Reg-reg op5 = 31 is reserved.
    EXPECT_THROW(d16Decode(0x5f00), FatalError);
    // LDC with bit 11 set is reserved.
    EXPECT_THROW(d16Decode(0x1800), FatalError);
    // Reg-imm op4 = 15 is reserved.
    EXPECT_THROW(d16Decode(0x7e00), FatalError);
}

// DLXe ----------------------------------------------------------------

TEST(DLXeCodec, AluRegSweep)
{
    for (Op op : {Op::Add, Op::Sub, Op::And, Op::Or, Op::Xor, Op::Shl,
                  Op::Shr, Op::Shra}) {
        for (int rd : {0, 7, 31}) {
            for (int rs1 : {0, 13, 31}) {
                for (int rs2 : {0, 21, 31}) {
                    expectRoundTrip(kDLXe, AsmInst::r3(op, rd, rs1, rs2),
                                    op, Cond::Eq, rd, rs1, rs2, 0);
                }
            }
        }
    }
}

TEST(DLXeCodec, ThreeAddressDistinctRegs)
{
    // The defining DLXe capability: rd distinct from both sources.
    expectRoundTrip(kDLXe, AsmInst::r3(Op::Add, 5, 6, 7),
                    Op::Add, Cond::Eq, 5, 6, 7, 0);
}

TEST(DLXeCodec, ImmediateSweep)
{
    for (Op op : {Op::AddI, Op::SubI}) {
        for (int64_t imm : {-32768, -1, 0, 1, 32767}) {
            expectRoundTrip(kDLXe, AsmInst::ri(op, 9, 12, imm),
                            op, Cond::Eq, 9, 12, 0,
                            static_cast<int32_t>(imm));
        }
        EXPECT_THROW(dlxeEncode(AsmInst::ri(op, 9, 12, 32768)), FatalError);
    }
    for (Op op : {Op::AndI, Op::OrI, Op::XorI}) {
        for (int64_t imm : {0, 1, 0xff, 0xffff}) {
            expectRoundTrip(kDLXe, AsmInst::ri(op, 9, 12, imm),
                            op, Cond::Eq, 9, 12, 0,
                            static_cast<int32_t>(imm));
        }
        EXPECT_THROW(dlxeEncode(AsmInst::ri(op, 9, 12, -1)), FatalError);
        EXPECT_THROW(dlxeEncode(AsmInst::ri(op, 9, 12, 0x10000)),
                     FatalError);
    }
}

TEST(DLXeCodec, MviMvhi)
{
    // mvi is addi rd, r0, imm.
    const DecodedInst d =
        dlxeDecode(dlxeEncode(AsmInst::ri(Op::MvI, 9, -1, -5)));
    EXPECT_EQ(d.op, Op::AddI);
    EXPECT_EQ(d.rs1, 0);
    EXPECT_EQ(d.rd, 9);
    EXPECT_EQ(d.imm, -5);
    expectRoundTrip(kDLXe, AsmInst::ri(Op::MvHI, 9, -1, 0xabcd),
                    Op::MvHI, Cond::Eq, 9, 0, 0, 0xabcd);
}

TEST(DLXeCodec, CompareSweep)
{
    for (int i = 0; i < numConds; ++i) {
        const Cond c = static_cast<Cond>(i);
        expectRoundTrip(kDLXe, AsmInst::cmp(c, 17, 3, 9),
                        Op::Cmp, c, 17, 3, 9, 0);
        AsmInst ci = AsmInst::ri(Op::CmpI, 17, 3, -100);
        ci.cond = c;
        expectRoundTrip(kDLXe, ci, Op::CmpI, c, 17, 3, 0, -100);
    }
}

TEST(DLXeCodec, MemorySweep)
{
    for (Op op : {Op::Ld, Op::Ldh, Op::Ldhu, Op::Ldb, Op::Ldbu}) {
        for (int64_t off : {-32768, -4, 0, 4, 32767}) {
            expectRoundTrip(kDLXe, AsmInst::ri(op, 8, 31, off),
                            op, Cond::Eq, 8, 31, 0,
                            static_cast<int32_t>(off));
        }
    }
    for (Op op : {Op::St, Op::Sth, Op::Stb}) {
        AsmInst st;
        st.op = op;
        st.rs1 = 30;
        st.rs2 = 11;
        st.imm = -8;
        expectRoundTrip(kDLXe, st, op, Cond::Eq, 0, 30, 11, -8);
    }
}

TEST(DLXeCodec, BranchesAndJumps)
{
    for (Op op : {Op::Bz, Op::Bnz}) {
        AsmInst b;
        b.op = op;
        b.rs1 = 19;
        b.imm = -32768;
        expectRoundTrip(kDLXe, b, op, Cond::Eq, 0, 19, 0, -32768);
    }
    AsmInst br;
    br.op = Op::Br;
    br.imm = 1000;
    expectRoundTrip(kDLXe, br, Op::Br, Cond::Eq, 0, 0, 0, 1000);
    br.imm = 2;  // unaligned
    EXPECT_THROW(dlxeEncode(br), FatalError);

    AsmInst j;
    j.op = Op::J;
    j.imm = -(1 << 25);
    expectRoundTrip(kDLXe, j, Op::J, Cond::Eq, 0, 0, 0, -(1 << 25));
    j.op = Op::Jl;
    j.imm = 4 * ((1 << 25) - 1);
    expectRoundTrip(kDLXe, j, Op::Jl, Cond::Eq, 1, 0, 0,
                    4 * ((1 << 25) - 1));
    j.imm = 4 * (int64_t{1} << 25);
    EXPECT_THROW(dlxeEncode(j), FatalError);

    expectRoundTrip(kDLXe, AsmInst::ri(Op::Jr, -1, 9, 0),
                    Op::Jr, Cond::Eq, 0, 9, 0, 0);
    expectRoundTrip(kDLXe, AsmInst::ri(Op::Jlr, -1, 2, 0),
                    Op::Jlr, Cond::Eq, 1, 2, 0, 0);
    AsmInst jrz = AsmInst::r3(Op::Jrz, -1, 3, 8);
    expectRoundTrip(kDLXe, jrz, Op::Jrz, Cond::Eq, 0, 3, 8, 0);
    AsmInst jrnz = AsmInst::r3(Op::Jrnz, -1, 3, 8);
    expectRoundTrip(kDLXe, jrnz, Op::Jrnz, Cond::Eq, 0, 3, 8, 0);
}

TEST(DLXeCodec, FpOps)
{
    for (Op op : {Op::FAddS, Op::FAddD, Op::FSubS, Op::FSubD, Op::FMulS,
                  Op::FMulD, Op::FDivS, Op::FDivD}) {
        expectRoundTrip(kDLXe, AsmInst::r3(op, 30, 29, 28),
                        op, Cond::Eq, 30, 29, 28, 0);
    }
    for (Op op : {Op::CvtSiSf, Op::CvtSiDf, Op::CvtSfDf, Op::CvtDfSf,
                  Op::CvtSfSi, Op::CvtDfSi}) {
        expectRoundTrip(kDLXe, AsmInst::ri(op, 4, 22, 0),
                        op, Cond::Eq, 4, 22, 0, 0);
    }
    for (Cond c : {Cond::Lt, Cond::Le, Cond::Eq}) {
        AsmInst i = AsmInst::r3(Op::FCmpD, -1, 14, 17);
        i.cond = c;
        expectRoundTrip(kDLXe, i, Op::FCmpD, c, 0, 14, 17, 0);
    }
    expectRoundTrip(kDLXe, AsmInst::ri(Op::MifL, 3, 19, 0),
                    Op::MifL, Cond::Eq, 3, 19, 0, 0);
    expectRoundTrip(kDLXe, AsmInst::ri(Op::MfiH, 19, 3, 0),
                    Op::MfiH, Cond::Eq, 19, 3, 0, 0);
}

TEST(DLXeCodec, TrapRdsrNop)
{
    AsmInst t;
    t.op = Op::Trap;
    t.imm = 1234;
    expectRoundTrip(kDLXe, t, Op::Trap, Cond::Eq, 0, 0, 0, 1234);
    expectRoundTrip(kDLXe, AsmInst::ri(Op::Rdsr, 21, -1, 0),
                    Op::Rdsr, Cond::Eq, 21, 0, 0, 0);
    EXPECT_EQ(dlxeEncode(AsmInst::nop()), 0u);
    const DecodedInst d = dlxeDecode(0);
    EXPECT_EQ(d.op, Op::Add);
    EXPECT_EQ(d.rd, 0);
}

TEST(DLXeCodec, D16OnlyOpsRejected)
{
    AsmInst ldc;
    ldc.op = Op::Ldc;
    EXPECT_THROW(dlxeEncode(ldc), FatalError);
}

TEST(DLXeCodec, ReservedEncodingsRejected)
{
    // R-type func 11 is reserved.
    EXPECT_THROW(dlxeDecode(11), FatalError);
    // Unused primary opcode 0x3d.
    EXPECT_THROW(dlxeDecode(0x3du << 26), FatalError);
}

// ---------------------------------------------------------------------
// Instruction size property: D16 words always fit in 16 bits.
// ---------------------------------------------------------------------

TEST(D16Codec, EverythingFitsIn16Bits)
{
    // d16Encode returns uint16_t by construction; spot-check format tags.
    EXPECT_EQ(d16Encode(AsmInst::r3(Op::Add, 1, 1, 2)) >> 14, 0b01);
    AsmInst ld = AsmInst::ri(Op::Ld, 1, 2, 8);
    EXPECT_EQ(d16Encode(ld) >> 14, 0b10);
    EXPECT_EQ(d16Encode(AsmInst::r3(Op::FAddS, 1, 1, 2)) >> 14, 0b11);
    AsmInst mvi = AsmInst::ri(Op::MvI, 1, -1, 7);
    EXPECT_EQ(d16Encode(mvi) >> 13, 0b001);
    AsmInst br;
    br.op = Op::Br;
    br.imm = 4;
    EXPECT_EQ(d16Encode(br) >> 12, 0b0000);
    AsmInst ldc;
    ldc.op = Op::Ldc;
    ldc.imm = -4;
    EXPECT_EQ(d16Encode(ldc) >> 12, 0b0001);
}

// ---------------------------------------------------------------------
// Disassembly
// ---------------------------------------------------------------------

TEST(Disasm, SpotChecks)
{
    const DecodedInst add =
        decode(kDLXe, dlxeEncode(AsmInst::r3(Op::Add, 5, 6, 7)));
    EXPECT_EQ(disassemble(kDLXe, add, 0x1000), "add r5, r6, r7");

    const DecodedInst cmp =
        decode(kDLXe, dlxeEncode(AsmInst::cmp(Cond::Ltu, 4, 2, 3)));
    EXPECT_EQ(disassemble(kDLXe, cmp, 0x1000), "cmp.ltu r4, r2, r3");

    const DecodedInst ld =
        decode(kD16, d16Encode(AsmInst::ri(Op::Ld, 3, 15, 8)));
    EXPECT_EQ(disassemble(kD16, ld, 0x1000), "ld r3, 8(sp)");

    AsmInst brIn;
    brIn.op = Op::Br;
    brIn.imm = -4;
    const DecodedInst br = decode(kD16, d16Encode(brIn));
    EXPECT_EQ(disassemble(kD16, br, 0x1000), "br 0x00000ffc");

    const DecodedInst fa =
        decode(kD16, d16Encode(AsmInst::r3(Op::FMulD, 2, 2, 9)));
    EXPECT_EQ(disassemble(kD16, fa, 0), "mul.df f2, f2, f9");

    AsmInst fcmp = AsmInst::r3(Op::FCmpS, -1, 1, 2);
    fcmp.cond = Cond::Le;
    const DecodedInst fc = decode(kD16, d16Encode(fcmp));
    EXPECT_EQ(disassemble(kD16, fc, 0), "cmp.le.sf f1, f2");
}

// ---------------------------------------------------------------------
// Parameterized exhaustive-ish round trip over register pairs.
// ---------------------------------------------------------------------

class D16RegisterPairs : public ::testing::TestWithParam<std::tuple<int, int>>
{};

TEST_P(D16RegisterPairs, MvRoundTrip)
{
    const auto [rd, rs] = GetParam();
    const DecodedInst d =
        d16Decode(d16Encode(AsmInst::ri(Op::Mv, rd, rs, 0)));
    EXPECT_EQ(d.op, Op::Mv);
    EXPECT_EQ(int{d.rd}, rd);
    EXPECT_EQ(int{d.rs1}, rs);
}

TEST_P(D16RegisterPairs, SubWordRoundTrip)
{
    const auto [rd, rs] = GetParam();
    const DecodedInst d =
        d16Decode(d16Encode(AsmInst::ri(Op::Ldbu, rd, rs, 0)));
    EXPECT_EQ(d.op, Op::Ldbu);
    EXPECT_EQ(int{d.rd}, rd);
    EXPECT_EQ(int{d.rs1}, rs);
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, D16RegisterPairs,
    ::testing::Combine(::testing::Range(0, 16), ::testing::Range(0, 16)));

class DLXeImmediates : public ::testing::TestWithParam<int>
{};

TEST_P(DLXeImmediates, AddiRoundTrip)
{
    const int imm = GetParam();
    const DecodedInst d =
        dlxeDecode(dlxeEncode(AsmInst::ri(Op::AddI, 3, 4, imm)));
    EXPECT_EQ(d.imm, imm);
}

INSTANTIATE_TEST_SUITE_P(SweepImm, DLXeImmediates,
                         ::testing::Values(-32768, -12345, -256, -1, 0, 1,
                                           255, 256, 12345, 32767));

} // namespace
