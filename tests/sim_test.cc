/**
 * @file
 * Pipeline-model tests: execution semantics, delay slots, interlock
 * timing (hand-computed cycle counts), traps, and both encodings
 * end-to-end through the assembler.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "asm/parser.hh"
#include "sim/machine.hh"
#include "sim/trap.hh"
#include "support/error.hh"

namespace
{

using namespace d16sim;
using namespace d16sim::assem;
using namespace d16sim::isa;
using namespace d16sim::sim;

Image
build(const TargetInfo &t, std::string_view src)
{
    Assembler as(t);
    as.add(parseAsm(t, src));
    return as.link();
}

/** Run a program to halt and return the machine for inspection. */
std::unique_ptr<Machine>
runProgram(const TargetInfo &t, std::string_view src)
{
    auto m = std::make_unique<Machine>(build(t, src));
    m->run();
    return m;
}

TEST(Machine, InitialState)
{
    const Image img = build(TargetInfo::dlxe(), "main:\n  ret\n  nop\n");
    Machine m(img);
    EXPECT_EQ(m.pc(), img.entry);
    EXPECT_EQ(m.reg(31), m.memory().size());  // sp at top
    EXPECT_EQ(m.reg(30), img.dataBase);       // gp at data
    EXPECT_EQ(m.reg(1), 0u);                  // ra = halt sentinel
}

TEST(Machine, HaltViaReturn)
{
    auto m = runProgram(TargetInfo::dlxe(), R"(
main:
    mvi r2, 7
    ret
    nop
)");
    EXPECT_TRUE(m->halted());
    EXPECT_EQ(m->reg(2), 7u);
    EXPECT_EQ(m->stats().instructions, 3u);
}

TEST(Machine, HaltViaTrap)
{
    auto m = runProgram(TargetInfo::dlxe(), R"(
main:
    mvi r2, 3
    trap 5
)");
    EXPECT_TRUE(m->halted());
    EXPECT_EQ(m->stats().traps, 1u);
}

TEST(Machine, ArithmeticDLXe)
{
    auto m = runProgram(TargetInfo::dlxe(), R"(
main:
    mvi r2, 100
    mvi r3, 7
    add r4, r2, r3
    sub r5, r2, r3
    and r6, r2, r3
    or r7, r2, r3
    xor r8, r2, r3
    mvi r9, 2
    shl r10, r2, r9
    shr r11, r2, r9
    mvi r12, -100
    shra r13, r12, r9
    neg r14, r3
    inv r15, r3
    ret
    nop
)");
    EXPECT_EQ(m->reg(4), 107u);
    EXPECT_EQ(m->reg(5), 93u);
    EXPECT_EQ(m->reg(6), 100u & 7u);
    EXPECT_EQ(m->reg(7), 100u | 7u);
    EXPECT_EQ(m->reg(8), 100u ^ 7u);
    EXPECT_EQ(m->reg(10), 400u);
    EXPECT_EQ(m->reg(11), 25u);
    EXPECT_EQ(static_cast<int32_t>(m->reg(13)), -25);
    EXPECT_EQ(static_cast<int32_t>(m->reg(14)), -7);
    EXPECT_EQ(m->reg(15), ~7u);
}

TEST(Machine, TwoAddressD16)
{
    auto m = runProgram(TargetInfo::d16(), R"(
main:
    mvi r2, 10
    mvi r3, 3
    add r2, r3       ; r2 = 13
    sub r2, r3       ; r2 = 10
    shli r2, 2       ; r2 = 40
    addi r2, 2       ; r2 = 42
    ret
    nop
)");
    EXPECT_EQ(m->reg(2), 42u);
}

TEST(Machine, DLXeR0IsZero)
{
    auto m = runProgram(TargetInfo::dlxe(), R"(
main:
    mvi r0, 55
    add r2, r0, r0
    ret
    nop
)");
    EXPECT_EQ(m->reg(0), 0u);
    EXPECT_EQ(m->reg(2), 0u);
}

TEST(Machine, D16R0IsWritable)
{
    auto m = runProgram(TargetInfo::d16(), R"(
main:
    mvi at, 55
    mv r2, at
    ret
    nop
)");
    EXPECT_EQ(m->reg(0), 55u);
    EXPECT_EQ(m->reg(2), 55u);
}

TEST(Machine, CompareAndBranchD16)
{
    // D16 compares write r0; bz/bnz test r0 implicitly.
    auto m = runProgram(TargetInfo::d16(), R"(
main:
    mvi r2, 5
    mvi r3, 9
    cmp.lt r2, r3    ; at = 1
    bnz took
    nop
    mvi r4, 111      ; skipped
took:
    mvi r5, 222
    ret
    nop
)");
    EXPECT_EQ(m->reg(4), 0u);
    EXPECT_EQ(m->reg(5), 222u);
}

TEST(Machine, DelaySlotAlwaysExecutes)
{
    auto m = runProgram(TargetInfo::dlxe(), R"(
main:
    mvi r2, 0
    br over
    addi r2, r2, 1   ; delay slot: executes although branch taken
    addi r2, r2, 10  ; skipped
over:
    ret
    nop
)");
    EXPECT_EQ(m->reg(2), 1u);
    EXPECT_EQ(m->stats().takenBranches, 2u);  // br + ret
}

TEST(Machine, NotTakenBranchFallsThrough)
{
    auto m = runProgram(TargetInfo::dlxe(), R"(
main:
    mvi r3, 1
    bz r3, skip      ; not taken
    mvi r4, 5        ; delay slot
    mvi r5, 6
skip:
    ret
    nop
)");
    EXPECT_EQ(m->reg(4), 5u);
    EXPECT_EQ(m->reg(5), 6u);
    EXPECT_EQ(m->stats().branches, 2u);
    EXPECT_EQ(m->stats().takenBranches, 1u);  // only ret
}

TEST(Machine, CallAndReturnDLXe)
{
    auto m = runProgram(TargetInfo::dlxe(), R"(
main:
    addi sp, sp, -4
    st ra, 0(sp)
    mvi r2, 4
    jl double        ; direct call
    nop
    jl double        ; again: r2 = 16
    nop
    ld ra, 0(sp)
    addi sp, sp, 4
    ret
    nop
double:
    add r2, r2, r2
    ret
    nop
)");
    EXPECT_EQ(m->reg(2), 16u);
}

TEST(Machine, CallViaPoolD16)
{
    // D16 calls: materialize the callee address with ldc, then jlr.
    auto m = runProgram(TargetInfo::d16(), R"(
    .align 4
pool:
    .word double
main:
    subi sp, 4
    st ra, 0(sp)
    mvi r2, 21
    ldc pool
    jlr at
    nop
    ld ra, 0(sp)
    addi sp, 4
    ret
    nop
double:
    add r2, r2
    jr ra
    nop
)");
    EXPECT_EQ(m->reg(2), 42u);
    EXPECT_EQ(m->stats().loads, 2u);  // pool load + ra restore
}

TEST(Machine, MemoryOps)
{
    auto m = runProgram(TargetInfo::dlxe(), R"(
main:
    mvi r2, -2
    st r2, 0(gp)
    ld r3, 0(gp)
    sth r2, 4(gp)
    ldh r4, 4(gp)
    ldhu r5, 4(gp)
    stb r2, 6(gp)
    ldb r6, 6(gp)
    ldbu r7, 6(gp)
    ret
    nop
    .data
buf: .space 16
)");
    EXPECT_EQ(static_cast<int32_t>(m->reg(3)), -2);
    EXPECT_EQ(static_cast<int32_t>(m->reg(4)), -2);
    EXPECT_EQ(m->reg(5), 0xfffeu);
    EXPECT_EQ(static_cast<int32_t>(m->reg(6)), -2);
    EXPECT_EQ(m->reg(7), 0xfeu);
    EXPECT_EQ(m->stats().loads, 5u);
    EXPECT_EQ(m->stats().stores, 3u);
}

TEST(Machine, LoadInterlockTiming)
{
    // ld result consumed by the very next instruction: exactly one
    // delayed-load interlock cycle.
    auto m = runProgram(TargetInfo::dlxe(), R"(
main:
    st r0, 0(gp)
    ld r3, 0(gp)
    add r4, r3, r3   ; immediate use: 1 stall
    ret
    nop
    .data
w: .word 0
)");
    EXPECT_EQ(m->stats().loadInterlocks, 1u);
    EXPECT_EQ(m->stats().instructions, 5u);
    EXPECT_EQ(m->stats().baseCycles(), 6u);
}

TEST(Machine, LoadDelaySlotFilledNoInterlock)
{
    auto m = runProgram(TargetInfo::dlxe(), R"(
main:
    st r0, 0(gp)
    ld r3, 0(gp)
    mvi r5, 1        ; independent: fills the load delay slot
    add r4, r3, r3   ; no stall now
    ret
    nop
    .data
w: .word 0
)");
    EXPECT_EQ(m->stats().loadInterlocks, 0u);
    EXPECT_EQ(m->stats().baseCycles(), m->stats().instructions);
}

TEST(Machine, FpInterlockTiming)
{
    MachineConfig cfg;
    cfg.fpu.mul = 4;
    const Image img = build(TargetInfo::dlxe(), R"(
main:
    mvi r2, 3
    mif.l f2, r2
    si2df f2, f2
    mul.df f3, f2, f2     ; issues t
    add.df f4, f3, f3     ; needs f3: stalls mul-1 = 3 cycles
    ret
    nop
)");
    Machine m(img, cfg);
    m.run();
    // si2df also interlocks mif.l->si2df (move lat 1: no stall) and
    // mul consumes f2 (convert lat 2: 1 stall).
    EXPECT_EQ(m.stats().fpInterlocks, 1u + 3u);
    EXPECT_DOUBLE_EQ(m.fregD(4), 18.0);
}

TEST(Machine, FpArithmeticAndConversions)
{
    auto m = runProgram(TargetInfo::dlxe(), R"(
main:
    mvi r2, 7
    mif.l f1, r2
    si2df f1, f1          ; f1 = 7.0
    mvi r3, 2
    mif.l f2, r3
    si2df f2, f2          ; f2 = 2.0
    div.df f3, f1, f2     ; 3.5
    add.df f4, f3, f2     ; 5.5
    mul.df f5, f4, f2     ; 11.0
    sub.df f6, f5, f1     ; 4.0
    neg.df f7, f6         ; -4.0
    df2si f8, f3          ; 3 (truncation)
    mfi.l r4, f8
    df2sf f9, f3          ; 3.5f
    sf2df f10, f9
    ret
    nop
)");
    EXPECT_DOUBLE_EQ(m->fregD(3), 3.5);
    EXPECT_DOUBLE_EQ(m->fregD(7), -4.0);
    EXPECT_EQ(m->reg(4), 3u);
    EXPECT_FLOAT_EQ(m->fregS(9), 3.5f);
    EXPECT_DOUBLE_EQ(m->fregD(10), 3.5);
}

TEST(Machine, FpCompareAndRdsr)
{
    auto m = runProgram(TargetInfo::d16(), R"(
main:
    mvi r2, 1
    mif.l f1, r2
    si2df f1, f1
    mvi r3, 2
    mif.l f2, r3
    si2df f2, f2
    cmp.lt.df f1, f2
    rdsr r4              ; 1
    cmp.eq.df f1, f2
    rdsr r5              ; 0
    ret
    nop
)");
    EXPECT_EQ(m->reg(4), 1u);
    EXPECT_EQ(m->reg(5), 0u);
    EXPECT_GT(m->stats().fpInterlocks, 0u);  // rdsr right after cmp
}

TEST(Machine, DoubleThroughGprHalves)
{
    // Build a double from two 32-bit halves (the only memory<->FPU
    // path on these machines) and read it back.
    auto m = runProgram(TargetInfo::dlxe(), R"(
main:
    ld r2, 0(gp)
    ld r3, 4(gp)
    mif.l f2, r2
    mif.h f2, r3
    add.df f3, f2, f2
    mfi.l r4, f3
    mfi.h r5, f3
    ret
    nop
    .data
d:  .word 0, 0x3ff00000   ; IEEE-754 double 1.0, little endian halves
)");
    EXPECT_DOUBLE_EQ(m->fregD(2), 1.0);
    EXPECT_DOUBLE_EQ(m->fregD(3), 2.0);
    // 2.0 == 0x4000000000000000
    EXPECT_EQ(m->reg(4), 0u);
    EXPECT_EQ(m->reg(5), 0x40000000u);
}

TEST(Machine, TrapOutput)
{
    auto m = runProgram(TargetInfo::dlxe(), R"(
main:
    mvi r2, -42
    trap 1
    mvi r2, 10
    trap 2
    mvi r2, msg
    trap 3
    mvhi r2, 45
    ori r2, r2, 50880   ; 45<<16 | 50880 = 3000000
    trap 7
    ret
    nop
    .data
msg: .asciz "hi "
)");
    EXPECT_EQ(m->output(), "-42\nhi 3000000");
}

TEST(Machine, TrapAlloc)
{
    auto m = runProgram(TargetInfo::dlxe(), R"(
main:
    mvi r2, 100
    trap 6
    mv r4, r2
    mvi r2, 8
    trap 6
    mv r5, r2
    ret
    nop
)");
    EXPECT_NE(m->reg(4), 0u);
    EXPECT_EQ(m->reg(5), m->reg(4) + 104);  // 100 rounded up to 8
    EXPECT_EQ(m->reg(5) % 8, 0u);
}

TEST(Machine, LoopExecution)
{
    // Sum 1..10 on both machines; identical results.
    auto mD = runProgram(TargetInfo::d16(), R"(
main:
    mvi r2, 0
    mvi r3, 10
loop:
    add r2, r3
    subi r3, 1
    cmp.eq r3, r4    ; r4 never written: 0
    bz loop
    nop
    ret
    nop
)");
    EXPECT_EQ(mD->reg(2), 55u);

    auto mX = runProgram(TargetInfo::dlxe(), R"(
main:
    mvi r2, 0
    mvi r3, 10
loop:
    add r2, r2, r3
    subi r3, r3, 1
    bnz r3, loop
    nop
    ret
    nop
)");
    EXPECT_EQ(mX->reg(2), 55u);
    // DLXe path is shorter: no explicit compare.
    EXPECT_LT(mX->stats().instructions, mD->stats().instructions);
}

TEST(Machine, StackDiscipline)
{
    auto m = runProgram(TargetInfo::dlxe(), R"(
main:
    addi sp, sp, -8
    mvi r2, 77
    st r2, 0(sp)
    mvi r2, 0
    ld r2, 0(sp)
    addi sp, sp, 8
    ret
    nop
)");
    EXPECT_EQ(m->reg(2), 77u);
    EXPECT_EQ(m->reg(31), m->memory().size());
}

TEST(Machine, RecursiveCallDLXe)
{
    // factorial(5) via recursion, exercising ra save/restore.
    auto m = runProgram(TargetInfo::dlxe(), R"(
main:
    addi sp, sp, -4
    st ra, 0(sp)
    mvi r2, 5
    jl fact
    nop
    ld ra, 0(sp)
    addi sp, sp, 4
    ret
    nop
fact:
    cmpi.le r4, r2, 1
    bnz r4, base
    nop
    addi sp, sp, -8
    st ra, 0(sp)
    st r2, 4(sp)
    subi r2, r2, 1
    jl fact
    nop
    ld r3, 4(sp)          ; original n
    ld ra, 0(sp)
    addi sp, sp, 8
    ; r2 = fact(n-1); multiply by n via repeated add (no mul insn)
    mv r5, r2
    mvi r2, 0
mulloop:
    add r2, r2, r5
    subi r3, r3, 1
    bnz r3, mulloop
    nop
base:
    ret
    nop
)");
    EXPECT_EQ(m->reg(2), 120u);
}

TEST(Machine, IllegalPcIsFatal)
{
    const Image img = build(TargetInfo::dlxe(), R"(
main:
    mvhi r3, 16         ; 0x100000
    jr r3
    nop
)");
    Machine m(img);
    EXPECT_THROW(m.run(), FatalError);
}

TEST(Machine, MisalignedAccessIsFatal)
{
    const Image img = build(TargetInfo::dlxe(), R"(
main:
    mvi r3, 2
    ld r4, 1(r3)
    ret
    nop
)");
    Machine m(img);
    EXPECT_THROW(m.run(), FatalError);
}

TEST(Machine, InstructionLimitIsFatal)
{
    MachineConfig cfg;
    cfg.maxInstructions = 100;
    const Image img = build(TargetInfo::dlxe(), R"(
main:
    br main
    nop
)");
    Machine m(img, cfg);
    EXPECT_THROW(m.run(), FatalError);
}

/** Probe capturing reference streams. */
struct RecordingProbe : Probe
{
    std::vector<uint32_t> fetches;
    std::vector<std::pair<uint32_t, int>> reads, writes;

    void onIFetch(uint32_t pc) override { fetches.push_back(pc); }
    void
    onDataRead(uint32_t a, int s) override
    {
        reads.emplace_back(a, s);
    }
    void
    onDataWrite(uint32_t a, int s) override
    {
        writes.emplace_back(a, s);
    }
};

TEST(Machine, ProbesObserveStreams)
{
    const Image img = build(TargetInfo::dlxe(), R"(
main:
    st r0, 4(gp)
    ld r3, 4(gp)
    ret
    nop
    .data
w: .space 8
)");
    Machine m(img);
    RecordingProbe probe;
    m.addProbe(&probe);
    m.run();
    ASSERT_EQ(probe.fetches.size(), 4u);
    EXPECT_EQ(probe.fetches[0], img.entry);
    EXPECT_EQ(probe.fetches[1], img.entry + 4);
    ASSERT_EQ(probe.reads.size(), 1u);
    EXPECT_EQ(probe.reads[0].first, img.dataBase + 4);
    EXPECT_EQ(probe.reads[0].second, 4);
    ASSERT_EQ(probe.writes.size(), 1u);
}

TEST(Machine, D16LdcTiming)
{
    // Ldc is a load: consumer immediately after stalls one cycle.
    auto m = runProgram(TargetInfo::d16(), R"(
    .align 4
pool: .word 1234
main:
    ldc pool
    mv r2, at         ; immediate use of the loaded constant
    ret
    nop
)");
    EXPECT_EQ(m->reg(2), 1234u);
    EXPECT_EQ(m->stats().loadInterlocks, 1u);
}

} // namespace
