/**
 * @file
 * Verification-layer tests.
 *
 * Positive: the shipped toolchain is clean — every workload compiles
 * with the IR verifier hooked after every pass (opt levels 0-2) and its
 * linked image passes the machine-code linter with zero findings, and
 * every emitted instruction round-trips encode -> decode -> re-encode
 * bit-identically on both targets.
 *
 * Negative: hand-built IR functions and assembly modules seeding one
 * defect per test; each must be caught with the exact diagnostic code,
 * so a refactor cannot silently stop detecting a defect class.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "asm/assembler.hh"
#include "core/workloads.hh"
#include "isa/codec.hh"
#include "isa/reconstruct.hh"
#include "mc/compiler.hh"
#include "mc/machine_env.hh"
#include "support/error.hh"
#include "verify/verify.hh"

namespace
{

using namespace d16sim;
using assem::AsmItem;
using assem::Image;
using isa::AsmInst;
using isa::Cond;
using isa::Op;
using isa::TargetInfo;

// ---------------------------------------------------------------------
// Positive: the real toolchain produces verifier- and linter-clean code.
// ---------------------------------------------------------------------

void
expectClean(const verify::DiagEngine &diags)
{
    if (diags.failures() == 0)
        return;
    std::ostringstream os;
    diags.renderText(os);
    ADD_FAILURE() << os.str();
}

/** Compile one workload with the IR verifier collecting into `diags`
 *  (non-throwing, so one test can report every finding at once). */
assem::Image
compileVerified(const core::Workload &w, mc::CompileOptions opts,
                int optLevel, verify::DiagEngine &diags)
{
    opts.optLevel = optLevel;
    opts.verifyEach = true;
    opts.verifyHook = [&diags](const mc::IrFunction &fn, const char *stage,
                               const mc::MachineEnv *env) {
        verify::IrVerifyOptions vo;
        vo.env = env;
        vo.stage = stage;
        verify::verifyIr(fn, diags, vo);
    };
    diags.setUnit(w.name + "/" + opts.name());

    mc::CompileResult comp = mc::compile(w.source, opts);
    assem::Assembler as(opts.target());
    as.add(std::move(comp.items));
    return as.link();
}

TEST(WorkloadsClean, VerifyAndLintBothTargets)
{
    verify::DiagEngine diags;
    for (const core::Workload &w : core::workloadSuite()) {
        for (const auto &base :
             {mc::CompileOptions::d16(), mc::CompileOptions::dlxe()}) {
            const Image img = compileVerified(w, base, 2, diags);
            verify::lintImage(img, diags);
        }
    }
    expectClean(diags);
}

TEST(WorkloadsClean, VerifyEachAtLowerOptLevels)
{
    verify::DiagEngine diags;
    for (const core::Workload &w : core::workloadSuite()) {
        for (const auto &base :
             {mc::CompileOptions::d16(), mc::CompileOptions::dlxe()}) {
            for (int opt = 0; opt <= 1; ++opt)
                compileVerified(w, base, opt, diags);
        }
    }
    expectClean(diags);
}

// Satellite: every instruction the toolchain emits, on both targets,
// round-trips through decode + reconstruct + encode bit-identically.
TEST(RoundTrip, EveryWorkloadInstructionBothTargets)
{
    int checked = 0;
    for (const core::Workload &w : core::workloadSuite()) {
        for (const auto &base :
             {mc::CompileOptions::d16(), mc::CompileOptions::dlxe()}) {
            mc::CompileOptions opts = base;
            opts.optLevel = 2;
            mc::CompileResult comp = mc::compile(w.source, opts);
            assem::Assembler as(opts.target());
            as.add(std::move(comp.items));
            const Image img = as.link();
            const TargetInfo &t = *img.target;
            for (const assem::InsnSite &site : img.insnSites) {
                const size_t off = site.addr - img.textBase;
                if (t.insnBytes() == 2) {
                    const uint16_t word = static_cast<uint16_t>(
                        img.bytes[off] | (img.bytes[off + 1] << 8));
                    const isa::DecodedInst d = isa::d16Decode(word);
                    ASSERT_EQ(isa::d16Encode(isa::reconstruct(t, d)), word)
                        << w.name << " @" << std::hex << site.addr;
                } else {
                    uint32_t word = 0;
                    for (int i = 3; i >= 0; --i)
                        word = (word << 8) | img.bytes[off + i];
                    const isa::DecodedInst d = isa::dlxeDecode(word);
                    ASSERT_EQ(isa::dlxeEncode(isa::reconstruct(t, d)), word)
                        << w.name << " @" << std::hex << site.addr;
                }
                ++checked;
            }
        }
    }
    // Both encodings of the full suite: thousands of instructions.
    EXPECT_GT(checked, 10000);
}

// ---------------------------------------------------------------------
// Negative: seeded IR defects, each caught with its exact code.
// ---------------------------------------------------------------------

class IrNegative : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        fn.name = "seeded";
        fn.retType = types.voidTy();
        fn.blocks.emplace_back();
        fn.blocks.back().id = 0;
    }

    bool
    run(const mc::MachineEnv *env = nullptr)
    {
        verify::IrVerifyOptions vo;
        vo.env = env;
        vo.stage = "seeded-defect";
        return verify::verifyIr(fn, diags, vo);
    }

    static mc::IrInst
    movImm(mc::VReg dst, int64_t v)
    {
        mc::IrInst i;
        i.op = mc::IrOp::MovImm;
        i.dst = dst;
        i.imm = v;
        return i;
    }

    static mc::IrInst
    ret()
    {
        mc::IrInst i;
        i.op = mc::IrOp::Ret;
        return i;
    }

    static mc::IrInst
    jmp(int bb)
    {
        mc::IrInst i;
        i.op = mc::IrOp::Jmp;
        i.thenBB = bb;
        return i;
    }

    static mc::IrInst
    binOp(mc::IrOp op, mc::VReg dst, mc::VReg a, mc::Operand b,
          Cond cond = Cond::Eq)
    {
        mc::IrInst i;
        i.op = op;
        i.dst = dst;
        i.a = a;
        i.b = b;
        i.cond = cond;
        return i;
    }

    mc::TypeTable types;
    mc::IrFunction fn;
    verify::DiagEngine diags;
};

TEST_F(IrNegative, NoTerminator)
{
    const mc::VReg v = fn.newReg(mc::RegClass::Int);
    fn.blocks[0].insts = {movImm(v, 1)};
    EXPECT_FALSE(run());
    EXPECT_TRUE(diags.has("ir-no-terminator"));
}

TEST_F(IrNegative, TerminatorInMiddle)
{
    fn.blocks[0].insts = {ret(), ret()};
    EXPECT_FALSE(run());
    EXPECT_TRUE(diags.has("ir-terminator-middle"));
}

TEST_F(IrNegative, BranchToMissingBlock)
{
    fn.blocks[0].insts = {jmp(7)};
    EXPECT_FALSE(run());
    EXPECT_TRUE(diags.has("ir-bad-branch-target"));
}

TEST_F(IrNegative, BlockIdMismatch)
{
    fn.blocks[0].id = 3;
    fn.blocks[0].insts = {ret()};
    EXPECT_FALSE(run());
    EXPECT_TRUE(diags.has("ir-block-id"));
}

TEST_F(IrNegative, UseBeforeDef)
{
    const mc::VReg undef = fn.newReg(mc::RegClass::Int);
    const mc::VReg dst = fn.newReg(mc::RegClass::Int);
    mc::IrInst mov;
    mov.op = mc::IrOp::Mov;
    mov.dst = dst;
    mov.a = undef;
    fn.blocks[0].insts = {mov, ret()};
    EXPECT_FALSE(run());
    EXPECT_TRUE(diags.has("ir-use-before-def"));
}

TEST_F(IrNegative, ConditionalDefIsNotFlagged)
{
    // May-analysis: a def that reaches on only one path is legal IR
    // (the C program may simply never take the other path).
    const mc::VReg flag = fn.newReg(mc::RegClass::Int);
    const mc::VReg maybe = fn.newReg(mc::RegClass::Int);
    const mc::VReg use = fn.newReg(mc::RegClass::Int);
    fn.blocks.emplace_back().id = 1;
    fn.blocks.emplace_back().id = 2;

    mc::IrInst br;
    br.op = mc::IrOp::Br;
    br.a = flag;
    br.thenBB = 1;
    br.elseBB = 2;
    fn.blocks[0].insts = {movImm(flag, 0), br};
    fn.blocks[1].insts = {movImm(maybe, 5), jmp(2)};
    mc::IrInst mov;
    mov.op = mc::IrOp::Mov;
    mov.dst = use;
    mov.a = maybe;
    fn.blocks[2].insts = {mov, ret()};

    EXPECT_TRUE(run());
    EXPECT_TRUE(diags.empty());
}

TEST_F(IrNegative, IntOpWithFpDestination)
{
    const mc::VReg bad = fn.newReg(mc::RegClass::Fp);
    const mc::VReg a = fn.newReg(mc::RegClass::Int);
    const mc::VReg b = fn.newReg(mc::RegClass::Int);
    fn.blocks[0].insts = {movImm(a, 1), movImm(b, 2),
                          binOp(mc::IrOp::Add, bad, a,
                                mc::Operand::ofReg(b)),
                          ret()};
    EXPECT_FALSE(run());
    EXPECT_TRUE(diags.has("ir-class-mismatch"));
}

TEST_F(IrNegative, VRegIdOutOfRange)
{
    const mc::VReg dst = fn.newReg(mc::RegClass::Int);
    mc::IrInst mov;
    mov.op = mc::IrOp::Mov;
    mov.dst = dst;
    mov.a = mc::VReg{7, mc::RegClass::Int};  // only v0 exists
    fn.blocks[0].insts = {mov, ret()};
    EXPECT_FALSE(run());
    EXPECT_TRUE(diags.has("ir-bad-vreg"));
}

TEST_F(IrNegative, MissingReturnValue)
{
    fn.retType = types.intTy();
    fn.blocks[0].insts = {ret()};
    EXPECT_FALSE(run());
    EXPECT_TRUE(diags.has("ir-ret-type"));
}

TEST_F(IrNegative, MulSurvivesLegalization)
{
    const mc::MachineEnv env(mc::CompileOptions::d16());
    const mc::VReg d = fn.newReg(mc::RegClass::Int);
    const mc::VReg a = fn.newReg(mc::RegClass::Int);
    const mc::VReg b = fn.newReg(mc::RegClass::Int);
    fn.blocks[0].insts = {movImm(a, 3), movImm(b, 4),
                          binOp(mc::IrOp::Mul, d, a,
                                mc::Operand::ofReg(b)),
                          ret()};
    EXPECT_FALSE(run(&env));
    EXPECT_TRUE(diags.has("ir-op-not-lowered"));
}

TEST_F(IrNegative, UnencodableAluImmediate)
{
    const mc::MachineEnv env(mc::CompileOptions::d16());
    const mc::VReg d = fn.newReg(mc::RegClass::Int);
    const mc::VReg a = fn.newReg(mc::RegClass::Int);
    // D16 ALU immediates are 5-bit unsigned; +/-1000 fits neither the
    // addi nor the mirrored subi form.
    fn.blocks[0].insts = {movImm(a, 0),
                          binOp(mc::IrOp::Add, d, a,
                                mc::Operand::ofImm(1000)),
                          ret()};
    EXPECT_FALSE(run(&env));
    EXPECT_TRUE(diags.has("ir-imm-unencodable"));
}

TEST_F(IrNegative, ConditionUnavailableOnD16)
{
    const mc::MachineEnv env(mc::CompileOptions::d16());
    const mc::VReg d = fn.newReg(mc::RegClass::Int);
    const mc::VReg a = fn.newReg(mc::RegClass::Int);
    const mc::VReg b = fn.newReg(mc::RegClass::Int);
    fn.blocks[0].insts = {movImm(a, 1), movImm(b, 2),
                          binOp(mc::IrOp::Cmp, d, a,
                                mc::Operand::ofReg(b), Cond::Gt),
                          ret()};
    EXPECT_FALSE(run(&env));
    EXPECT_TRUE(diags.has("ir-cond-unavailable"));
}

TEST_F(IrNegative, BrCmpCompareTempOnD16)
{
    const mc::MachineEnv env(mc::CompileOptions::d16());
    const mc::VReg temp = fn.newReg(mc::RegClass::Int);
    const mc::VReg a = fn.newReg(mc::RegClass::Int);
    const mc::VReg b = fn.newReg(mc::RegClass::Int);
    fn.blocks.emplace_back().id = 1;
    mc::IrInst br = binOp(mc::IrOp::BrCmp, temp, a,
                          mc::Operand::ofReg(b), Cond::Lt);
    br.thenBB = 1;
    br.elseBB = 1;
    fn.blocks[0].insts = {movImm(a, 1), movImm(b, 2), br};
    fn.blocks[1].insts = {ret()};
    EXPECT_FALSE(run(&env));
    EXPECT_TRUE(diags.has("ir-class-mismatch"));
}

TEST_F(IrNegative, BrCmpMissingCompareTempOnDLXe)
{
    const mc::MachineEnv env(mc::CompileOptions::dlxe());
    const mc::VReg a = fn.newReg(mc::RegClass::Int);
    const mc::VReg b = fn.newReg(mc::RegClass::Int);
    fn.blocks.emplace_back().id = 1;
    mc::IrInst br = binOp(mc::IrOp::BrCmp, mc::VReg{}, a,
                          mc::Operand::ofReg(b), Cond::Lt);
    br.thenBB = 1;
    br.elseBB = 1;
    fn.blocks[0].insts = {movImm(a, 1), movImm(b, 2), br};
    fn.blocks[1].insts = {ret()};
    EXPECT_FALSE(run(&env));
    EXPECT_TRUE(diags.has("ir-missing-dst"));
}

// ---------------------------------------------------------------------
// Negative: seeded machine-code defects.
// ---------------------------------------------------------------------

Image
assembleD16(std::vector<AsmItem> items)
{
    assem::Assembler as(TargetInfo::d16());
    as.add(std::move(items));
    return as.link();
}

verify::DiagEngine
lint(const Image &img, bool perfNotes = false)
{
    verify::DiagEngine diags;
    verify::LintOptions lo;
    lo.perfNotes = perfNotes;
    verify::lintImage(img, diags, lo);
    return diags;
}

TEST(McLintNegative, BranchInDelaySlot)
{
    // A taken transfer in a delay slot panics the simulator
    // (sim/machine.cc); the linter must reject the sequence statically.
    const Image img = assembleD16({
        AsmItem::label("main"),
        AsmItem::instruction(AsmInst::branch(Op::Br, 0, "main")),
        AsmItem::instruction(AsmInst::branch(Op::Br, 0, "main")),
        AsmItem::instruction(AsmInst::nop()),
    });
    const verify::DiagEngine diags = lint(img);
    EXPECT_TRUE(diags.has("mc-branch-in-delay-slot"));
    EXPECT_GT(diags.failures(), 0);
}

TEST(McLintNegative, MissingDelaySlot)
{
    const Image img = assembleD16({
        AsmItem::label("main"),
        AsmItem::instruction(AsmInst::nop()),
        AsmItem::instruction(AsmInst::branch(Op::Br, 0, "main")),
    });
    const verify::DiagEngine diags = lint(img);
    EXPECT_TRUE(diags.has("mc-missing-delay-slot"));
}

TEST(McLintNegative, BranchTargetOutsideText)
{
    // A branch resolved to a data symbol encodes fine but would execute
    // data; the target check catches it.
    const Image img = assembleD16({
        AsmItem::label("main"),
        AsmItem::instruction(AsmInst::branch(Op::Br, 0, "d")),
        AsmItem::instruction(AsmInst::nop()),
        AsmItem::section(false),
        AsmItem::label("d"),
        AsmItem::word({assem::DataValue{0}}),
    });
    const verify::DiagEngine diags = lint(img);
    EXPECT_TRUE(diags.has("mc-branch-target"));
}

TEST(McLintNegative, ReservedEncoding)
{
    Image img = assembleD16({
        AsmItem::label("main"),
        AsmItem::instruction(AsmInst::nop()),
        AsmItem::instruction(AsmInst::nop()),
    });
    // Find a word the canonical decoder rejects and overwrite the
    // first instruction with it (a corrupted or mislinked image).
    uint32_t reserved = 0;
    bool found = false;
    for (uint32_t w = 0; w <= 0xffff && !found; ++w) {
        try {
            (void)isa::d16Decode(static_cast<uint16_t>(w));
        } catch (const FatalError &) {
            reserved = w;
            found = true;
        }
    }
    ASSERT_TRUE(found);
    const size_t off = img.insnSites.at(0).addr - img.textBase;
    img.bytes[off] = static_cast<uint8_t>(reserved & 0xff);
    img.bytes[off + 1] = static_cast<uint8_t>(reserved >> 8);

    const verify::DiagEngine diags = lint(img);
    EXPECT_TRUE(diags.has("mc-reserved-encoding"));
}

TEST(McLintNegative, EntryPointNotAnInstruction)
{
    const Image img = assembleD16({
        AsmItem::instruction(AsmInst::nop()),
        AsmItem::instruction(AsmInst::nop()),
        AsmItem::section(false),
        AsmItem::label("main"),  // entry symbol lands in .data
        AsmItem::word({assem::DataValue{1}}),
    });
    const verify::DiagEngine diags = lint(img);
    EXPECT_TRUE(diags.has("mc-bad-entry"));
}

TEST(McLintNegative, LoadUseInterlockIsANoteOnly)
{
    const int sp = TargetInfo::d16().spReg();
    const Image img = assembleD16({
        AsmItem::label("main"),
        AsmItem::instruction(AsmInst::ri(Op::Ld, 1, sp, 0)),
        AsmItem::instruction(AsmInst::r3(Op::Add, 2, 2, 1)),
        AsmItem::instruction(AsmInst::nop()),
    });
    const verify::DiagEngine quiet = lint(img, /*perfNotes=*/false);
    EXPECT_TRUE(quiet.empty());

    const verify::DiagEngine perf = lint(img, /*perfNotes=*/true);
    EXPECT_TRUE(perf.has("mc-load-use-interlock"));
    EXPECT_EQ(perf.notes(), 1);
    EXPECT_EQ(perf.failures(), 0);  // hardware interlocks; legal code
}

} // namespace
