/**
 * @file
 * Binary CFG analyzer tests: seeded defects, dominators/loops,
 * static/dynamic cross-validation, and a golden-result sweep.
 *
 * The seeded-defect tests hand-assemble small images that each violate
 * exactly one analyzer invariant (an unreachable block, a cold-path
 * use-before-def, a caller-saved value read across a call, a recursive
 * call cycle) and require exactly one diagnostic with the right code
 * and location — the analyzer's precision contract.
 *
 * The golden sweep analyzes all 15 workloads x {D16, DLXe} x opt 0-2
 * (90 images) and pins every summary field (graph shape, density
 * accounting, stack bounds, static instruction mix) against
 * tests/golden/analysis_golden.json. Regenerate after an *intended*
 * codegen or analyzer change:
 *
 *     build/tests/analysis_test --update-golden
 *
 * and review the diff like any other source change.
 */

#include <cstring>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "analysis/analysis.hh"
#include "analysis/dom.hh"
#include "analysis/xvalidate.hh"
#include "asm/assembler.hh"
#include "asm/parser.hh"
#include "core/toolchain.hh"
#include "core/workloads.hh"
#include "mc/compiler.hh"
#include "support/error.hh"
#include "support/json.hh"

using namespace d16sim;
using namespace d16sim::analysis;

namespace
{

bool updateGolden = false;

assem::Image
assemble(const isa::TargetInfo &t, std::string_view src)
{
    assem::Assembler as(t);
    as.add(assem::parseAsm(t, src));
    return as.link();
}

int
countCode(const verify::DiagEngine &diags, std::string_view code)
{
    int n = 0;
    for (const verify::Diag &d : diags.diags())
        if (d.code == code)
            ++n;
    return n;
}

const verify::Diag *
findCode(const verify::DiagEngine &diags, std::string_view code)
{
    for (const verify::Diag &d : diags.diags())
        if (d.code == code)
            return &d;
    return nullptr;
}

std::string
readFile(const char *path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in) << "cannot read " << path;
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

} // namespace

// ----- seeded defects -------------------------------------------------

TEST(SeededDefect, UnreachableBlock)
{
    // The unconditional branch skips the addi block, which no leader
    // path can claim: one cfa-unreachable-block warning, nothing else.
    const assem::Image img = assemble(isa::TargetInfo::dlxe(), R"(
main:
    br end
    nop
    addi r2, r0, 1
end:
    ret
    nop
)");
    verify::DiagEngine diags;
    const AnalysisResult r = analyzeImage(img, diags);
    EXPECT_EQ(countCode(diags, "cfa-unreachable-block"), 1);
    EXPECT_EQ(diags.failures(), 1);
    EXPECT_EQ(r.unreachableBlocks, 1);
    const verify::Diag *d = findCode(diags, "cfa-unreachable-block");
    ASSERT_NE(d, nullptr);
    EXPECT_TRUE(d->hasAddr);
    EXPECT_EQ(d->addr, img.symbol("main") + 8);  // past branch + slot
}

TEST(SeededDefect, UseBeforeDefOnColdPath)
{
    // r6 is a caller-saved temp with no def on *any* path; the cold
    // block reads it. The hot path is clean, so this is exactly the
    // may-analysis case (flag only when no path defines the register).
    const assem::Image img = assemble(isa::TargetInfo::d16(), R"(
main:
    mvi r2, 0
    cmp.lt r2, r3
    bz cold
    nop
    ret
    nop
cold:
    mv r2, r6
    ret
    nop
)");
    verify::DiagEngine diags;
    analyzeImage(img, diags);
    EXPECT_EQ(countCode(diags, "cfa-use-before-def"), 1);
    EXPECT_EQ(diags.failures(), 1);
    const verify::Diag *d = findCode(diags, "cfa-use-before-def");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->symbol, "cold");
    EXPECT_TRUE(d->hasAddr);
    EXPECT_EQ(d->addr, img.symbol("cold"));
}

TEST(SeededDefect, ClobberedAcrossCall)
{
    // r10 is caller-saved under the DLXe ABI (callee-saved starts at
    // r16): defined before the call, read after it. Both source reads
    // of the add dedup to one diagnostic per (site, register).
    const assem::Image img = assemble(isa::TargetInfo::dlxe(), R"(
main:
    addi sp, sp, -8
    st ra, 0(sp)
    addi r10, r0, 5
    jl f
    nop
    add r11, r10, r10
    ld ra, 0(sp)
    addi sp, sp, 8
    ret
    nop
f:
    ret
    nop
)");
    verify::DiagEngine diags;
    analyzeImage(img, diags);
    EXPECT_EQ(countCode(diags, "cfa-clobbered-across-call"), 1);
    EXPECT_EQ(diags.failures(), 1);
    const verify::Diag *d = findCode(diags, "cfa-clobbered-across-call");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->symbol, "main");
    EXPECT_NE(d->message.find("r10"), std::string::npos);
}

TEST(SeededDefect, RecursiveCycle)
{
    // D16 self-call through the constant pool (ldc + jlr at), the
    // exact shape the compiler emits: the resolver must read the
    // callee out of the pool word, and the stack pass must report the
    // cycle once and give up on a bound.
    const assem::Image img = assemble(isa::TargetInfo::d16(), R"(
main:
    subi sp, 8
    ldc cpool
    jlr at
    nop
    addi sp, 8
    ret
    nop
    .align 4
cpool:
    .word main
)");
    verify::DiagEngine diags;
    const AnalysisResult r = analyzeImage(img, diags);
    EXPECT_EQ(countCode(diags, "cfa-recursive-cycle"), 1);
    EXPECT_EQ(diags.failures(), 0);  // a Note, not a failure
    EXPECT_TRUE(r.recursive);
    EXPECT_EQ(r.maxStackBytes, -1);
    ASSERT_EQ(r.functions.size(), 1u);
    EXPECT_EQ(r.functions[0].stackDepth, -1);
    EXPECT_EQ(r.callEdgeCount, 1);
    const verify::Diag *d = findCode(diags, "cfa-recursive-cycle");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->symbol, "main");
    EXPECT_NE(d->message.find("main"), std::string::npos);
}

TEST(SeededDefect, CleanImageHasNoFindings)
{
    // The same shapes with the defects repaired: zero diagnostics of
    // any severity (the precision side of the contract).
    const assem::Image img = assemble(isa::TargetInfo::dlxe(), R"(
main:
    addi sp, sp, -8
    st ra, 0(sp)
    addi r10, r0, 5
    jl f
    nop
    ld ra, 0(sp)
    addi sp, sp, 8
    ret
    nop
f:
    ret
    nop
)");
    verify::DiagEngine diags;
    const AnalysisResult r = analyzeImage(img, diags);
    EXPECT_TRUE(diags.empty()) << [&] {
        std::ostringstream os;
        diags.renderText(os);
        return os.str();
    }();
    EXPECT_EQ(r.funcCount, 2);
    EXPECT_EQ(r.maxStackBytes, 8);
}

// ----- dominators and natural loops -----------------------------------

TEST(Dominators, CountingLoop)
{
    const assem::Image img = assemble(isa::TargetInfo::dlxe(), R"(
main:
    addi r10, r0, 4
loop:
    addi r10, r10, -1
    bnz r10, loop
    nop
    ret
    nop
)");
    verify::DiagEngine diags;
    const AnalysisResult r = analyzeImage(img, diags);
    EXPECT_EQ(diags.failures(), 0);
    EXPECT_EQ(r.loopCount, 1);
    ASSERT_EQ(r.functions.size(), 1u);
    EXPECT_EQ(r.functions[0].loops, 1);

    const ImageCfg &cfg = r.cfg;
    ASSERT_EQ(cfg.funcs.size(), 1u);
    const int entry = cfg.funcs[0].entryBlock;
    const int head = cfg.blockAt(img.symbol("loop"));
    ASSERT_GE(head, 0);

    const DomInfo dom = computeDoms(cfg, cfg.funcs[0]);
    ASSERT_EQ(dom.loopHeaders.size(), 1u);
    EXPECT_EQ(dom.loopHeaders[0], head);
    EXPECT_EQ(dom.idom[head], entry);
    EXPECT_TRUE(dom.dominates(entry, head));
    EXPECT_TRUE(dom.dominates(head, head));
    EXPECT_FALSE(dom.dominates(head, entry));
    // The loop body branches back to itself: a self back edge.
    const Block &hb = cfg.blocks[head];
    EXPECT_NE(std::find(hb.succs.begin(), hb.succs.end(), head),
              hb.succs.end());
}

// ----- static/dynamic cross-validation --------------------------------

TEST(CrossValidation, AgreesWithSimulator)
{
    for (const auto &opts :
         {mc::CompileOptions::d16(), mc::CompileOptions::dlxe()}) {
        const core::Workload &w = core::workload("queens");
        const assem::Image img = core::build(w.source, opts);
        verify::DiagEngine diags;
        const AnalysisResult r = analyzeImage(img, diags, Abi::from(opts));
        ASSERT_EQ(diags.failures(), 0) << opts.name();

        ExecProbe probe;
        const core::RunMeasurement m = core::run(img, {&probe});
        EXPECT_EQ(crossValidate(r.cfg, probe, m.stats, diags), 0)
            << opts.name();
        EXPECT_EQ(diags.errors(), 0) << opts.name();
        EXPECT_FALSE(probe.counts().empty());
    }
}

TEST(CrossValidation, DetectsTamperedCounts)
{
    const core::Workload &w = core::workload("ackermann");
    const auto opts = mc::CompileOptions::d16();
    const assem::Image img = core::build(w.source, opts);
    verify::DiagEngine clean;
    const AnalysisResult r = analyzeImage(img, clean, Abi::from(opts));
    ASSERT_EQ(clean.failures(), 0);

    ExecProbe probe;
    core::RunMeasurement m = core::run(img, {&probe});

    // An instruction count the per-PC profile cannot account for must
    // be flagged exactly (no tolerances anywhere in the validator).
    sim::SimStats tampered = m.stats;
    tampered.instructions += 1;
    verify::DiagEngine diags;
    EXPECT_GE(crossValidate(r.cfg, probe, tampered, diags), 1);
    EXPECT_EQ(countCode(diags, "cfa-xval-count-mismatch"), 1);

    // And the untampered stats still validate afterwards.
    verify::DiagEngine ok;
    EXPECT_EQ(crossValidate(r.cfg, probe, m.stats, ok), 0);
}

// ----- golden sweep ---------------------------------------------------

namespace
{

/** Analyze one workload/variant/opt unit into its golden JSON entry. */
Json
analyzeUnitJson(const core::Workload &w, mc::CompileOptions opts)
{
    mc::CompileResult comp = mc::compile(w.source, opts);
    assem::Assembler as(opts.target());
    as.add(std::move(comp.items));
    const assem::Image img = as.link();

    verify::DiagEngine diags;
    const AnalysisResult r = analyzeImage(img, diags, Abi::from(opts));
    EXPECT_EQ(diags.failures(), 0)
        << w.name << "/" << opts.name() << "/O" << opts.optLevel
        << ": analyzer reported failures on toolchain output";

    std::ostringstream os;
    r.renderJson(os);
    return Json::parse(os.str());
}

} // namespace

TEST(Golden, AnalysisSweep)
{
    Json units = Json::object();
    for (const core::Workload &w : core::workloadSuite()) {
        for (auto opts :
             {mc::CompileOptions::d16(), mc::CompileOptions::dlxe()}) {
            for (int lvl = 0; lvl <= 2; ++lvl) {
                opts.optLevel = lvl;
                const std::string key = w.name + "|" + opts.name() +
                                        "|O" + std::to_string(lvl);
                units[key] = analyzeUnitJson(w, opts);
            }
        }
    }
    Json doc = Json::object();
    doc["schema"] = "d16-analysis-golden-v1";
    doc["units"] = std::move(units);

    if (updateGolden) {
        std::ofstream out(D16SIM_ANALYSIS_GOLDEN_JSON);
        ASSERT_TRUE(out) << "cannot write " << D16SIM_ANALYSIS_GOLDEN_JSON;
        out << doc.dump(2) << "\n";
        std::cout << "analysis_test: regenerated "
                  << D16SIM_ANALYSIS_GOLDEN_JSON << " ("
                  << doc["units"].size() << " units)\n";
        return;
    }

    const Json golden =
        Json::parse(readFile(D16SIM_ANALYSIS_GOLDEN_JSON));
    // Per-unit comparison first for a targeted diff, then the whole
    // document byte-for-byte (every field is an integer or a string,
    // so equality is exact).
    const Json *gu = golden.find("units");
    ASSERT_NE(gu, nullptr) << "golden file has no units section";
    for (const auto &[key, value] : doc["units"].members()) {
        const Json *g = gu->find(key);
        ASSERT_NE(g, nullptr) << "unit " << key << " missing from golden "
                              << "(rerun with --update-golden?)";
        EXPECT_EQ(value.dump(2), g->dump(2))
            << "analysis summary diverged for " << key
            << " (rerun with --update-golden if the change is intended)";
    }
    EXPECT_EQ(doc.dump(2), golden.dump(2))
        << "analysis golden diverged (stale or extra units?)";
}

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--update-golden") == 0)
            updateGolden = true;
    return RUN_ALL_TESTS();
}
