/**
 * @file
 * Golden-result regression suite for the parallel sweep engine.
 *
 * Runs the smoke-scale experiment matrix (the full workload x variant
 * base matrix plus representative probe jobs, sweep::smokeMatrix())
 * and compares every emitted metric against the checked-in golden
 * file tests/golden/sweep_golden.json: integers exactly, doubles to a
 * relative tolerance. Any compiler, assembler, simulator, or memory-
 * model change that shifts a paper-facing number shows up here as a
 * keyed diff.
 *
 * Regenerating the golden after an *intended* metrics change:
 *
 *     build/tests/sweep_test --update-golden
 *
 * rewrites tests/golden/sweep_golden.json in place (the path is baked
 * in at configure time); re-run the test afterwards and review the
 * diff like any other source change.
 *
 * Also pins the engine's determinism contract (same matrix =>
 * byte-identical canonical JSON at --jobs 1 and --jobs 8), the
 * dedup/caching accounting, and — spot-checking the bench port — the
 * exact table values the fig04/fig05 drivers printed before they were
 * ported onto the engine.
 */

#include <cstring>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "core/sweep/sweep.hh"
#include "core/workloads.hh"
#include "support/error.hh"

using namespace d16sim;
using namespace d16sim::core;

namespace
{

bool updateGolden = false;

/** The smoke matrix, swept once and shared by the tests below. */
const sweep::ResultStore &
smokeStore()
{
    static sweep::ResultStore s;
    static const bool swept = [] {
        sweep::SweepEngine engine(s, 4);
        engine.add(sweep::smokeMatrix());
        engine.run();
        return true;
    }();
    (void)swept;
    return s;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot read ", path);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

/** A small, fast matrix for the determinism comparison. */
std::vector<sweep::JobSpec>
miniMatrix()
{
    std::vector<sweep::JobSpec> jobs;
    for (const std::string w :
         {"ackermann", "bubblesort", "solver", "whetstone", "queens"})
        for (const auto &[label, opts] : sweep::paperVariants())
            jobs.push_back(sweep::JobSpec::base(w, opts));
    jobs.push_back(sweep::JobSpec::fetch(
        "bubblesort", mc::CompileOptions::d16(), 4));
    jobs.push_back(sweep::JobSpec::imm(
        "queens", mc::CompileOptions::dlxe(16, false)));
    mem::CacheConfig cfg;
    cfg.sizeBytes = 1024;
    cfg.blockBytes = 32;
    cfg.subBlockBytes = 8;
    jobs.push_back(sweep::JobSpec::cache(
        "bubblesort", mc::CompileOptions::dlxe(), cfg, cfg));
    return jobs;
}

} // namespace

TEST(Sweep, GoldenMatch)
{
    const Json doc = sweep::sweepJson(smokeStore(), nullptr);
    if (updateGolden) {
        std::ofstream out(D16SIM_GOLDEN_JSON);
        ASSERT_TRUE(out) << "cannot write " << D16SIM_GOLDEN_JSON;
        out << doc.dump(2) << "\n";
        std::cout << "sweep_test: regenerated " << D16SIM_GOLDEN_JSON
                  << " (" << smokeStore().size() << " jobs)\n";
        return;
    }
    const Json golden = Json::parse(readFile(D16SIM_GOLDEN_JSON));
    std::string diff;
    EXPECT_TRUE(sweep::compareSweeps(doc, golden, &diff))
        << "sweep results diverged from " << D16SIM_GOLDEN_JSON << ":\n"
        << diff
        << "(rerun with --update-golden if the change is intended)";
}

TEST(Sweep, DeterministicAcrossThreadCounts)
{
    sweep::ResultStore serial, parallel;
    {
        sweep::SweepEngine engine(serial, 1);
        engine.add(miniMatrix());
        engine.run();
    }
    {
        sweep::SweepEngine engine(parallel, 8);
        engine.add(miniMatrix());
        engine.run();
    }
    // The comparable document (no timing section) must be
    // byte-identical whatever the schedule was.
    const std::string a = sweep::sweepJson(serial, nullptr).dump(2);
    const std::string b = sweep::sweepJson(parallel, nullptr).dump(2);
    EXPECT_EQ(a, b);
}

// The exact values the (pre-port, serial) fig04/fig05 drivers printed,
// proving the engine port changed the execution strategy and not the
// measurements. Regenerate goldens instead if a compiler change
// legitimately moves these.
TEST(Sweep, SpotCheckBenchRowsUnchangedByPort)
{
    const sweep::ResultStore &s = smokeStore();

    // bench_fig05_pathlength rows (instructions).
    EXPECT_EQ(s.at("queens|D16").run.stats.instructions, 1639487u);
    EXPECT_EQ(s.at("queens|DLXe/16/2").run.stats.instructions, 1550785u);
    EXPECT_EQ(s.at("queens|DLXe/16/3").run.stats.instructions, 1301595u);
    EXPECT_EQ(s.at("queens|DLXe/32/2").run.stats.instructions, 1552934u);
    EXPECT_EQ(s.at("queens|DLXe/32/3").run.stats.instructions, 1301688u);
    EXPECT_EQ(s.at("ackermann|D16").run.stats.instructions, 827674u);
    // assem exercises 2-D arrays; its counts moved when the row-stride
    // indexing miscompile was fixed (see tests/corpus/two_dim_index.c).
    EXPECT_EQ(s.at("assem|D16").run.stats.instructions, 6850548u);
    EXPECT_EQ(s.at("pi|DLXe/32/3").run.stats.instructions, 16282521u);

    // bench_fig04_density rows (static sizeBytes).
    EXPECT_EQ(s.at("ackermann|D16").run.sizeBytes, 424u);
    EXPECT_EQ(s.at("ackermann|DLXe/32/3").run.sizeBytes, 674u);
    EXPECT_EQ(s.at("queens|D16").run.sizeBytes, 564u);
    EXPECT_EQ(s.at("queens|DLXe/16/2").run.sizeBytes, 940u);
    EXPECT_EQ(s.at("pi|DLXe/32/2").run.sizeBytes, 1262u);
    EXPECT_EQ(s.at("assem|D16").run.sizeBytes, 6760u);
}

TEST(Sweep, EngineDeduplicatesAndCaches)
{
    sweep::ResultStore store;
    const sweep::JobSpec spec =
        sweep::JobSpec::base("ackermann", mc::CompileOptions::d16());
    {
        sweep::SweepEngine engine(store, 2);
        engine.add(spec);
        engine.add(spec);
        engine.add(spec);
        engine.run();
        EXPECT_EQ(engine.timing().executedRuns, 1);
        EXPECT_EQ(engine.timing().dedupedRuns, 2);
        EXPECT_EQ(engine.timing().cachedRuns, 0);
    }
    EXPECT_EQ(store.size(), 1u);
    {
        // A second sweep over the same job hits the store.
        sweep::SweepEngine engine(store, 2);
        engine.add(spec);
        engine.run();
        EXPECT_EQ(engine.timing().executedRuns, 0);
        EXPECT_EQ(engine.timing().cachedRuns, 1);
    }
}

TEST(Sweep, BuildSharedAcrossProbeJobs)
{
    // Three probe variants of one (workload, variant) pair: one build.
    sweep::ResultStore store;
    sweep::SweepEngine engine(store, 4);
    const mc::CompileOptions opts = mc::CompileOptions::d16();
    engine.add(sweep::JobSpec::base("solver", opts));
    engine.add(sweep::JobSpec::fetch("solver", opts, 4));
    engine.add(sweep::JobSpec::fetch("solver", opts, 8));
    engine.run();
    EXPECT_EQ(engine.timing().executedRuns, 3);
    EXPECT_EQ(engine.timing().executedBuilds, 1);
    // All three saw the same program.
    const uint64_t insns = store.at("solver|D16").run.stats.instructions;
    EXPECT_EQ(store.at("solver|D16|fb4").run.stats.instructions, insns);
    EXPECT_EQ(store.at("solver|D16|fb8").run.stats.instructions, insns);
}

TEST(Sweep, VariantKeyRoundTrips)
{
    std::vector<mc::CompileOptions> all;
    for (const auto &[label, opts] : sweep::paperVariants())
        all.push_back(opts);
    mc::CompileOptions ni = mc::CompileOptions::dlxe(16, false);
    ni.narrowImmediates = true;
    all.push_back(ni);
    mc::CompileOptions o0 = mc::CompileOptions::d16();
    o0.optLevel = 0;
    all.push_back(o0);

    for (const mc::CompileOptions &opts : all) {
        const std::string key = sweep::variantKey(opts);
        const mc::CompileOptions parsed = sweep::parseVariant(key);
        EXPECT_EQ(sweep::variantKey(parsed), key);
        EXPECT_EQ(parsed.isa, opts.isa);
        EXPECT_EQ(parsed.gprCount, opts.gprCount);
        EXPECT_EQ(parsed.threeAddress, opts.threeAddress);
        EXPECT_EQ(parsed.narrowImmediates, opts.narrowImmediates);
        EXPECT_EQ(parsed.optLevel, opts.optLevel);
    }
    EXPECT_THROW(sweep::parseVariant("DLXe/24/3"), FatalError);
}

TEST(Sweep, CompareSweepsCatchesDrift)
{
    Json a = Json::object();
    a["schema"] = Json("d16sweep-v1");
    a["results"]["perm|D16"]["run"]["instructions"] = Json(int64_t{100});
    a["results"]["perm|D16"]["derived"]["interlockRate"] = Json(0.5);

    Json b = Json::parse(a.dump());
    EXPECT_TRUE(sweep::compareSweeps(a, b, nullptr));

    // Timing differences are not drift.
    b["timing"]["wallSeconds"] = Json(123.0);
    EXPECT_TRUE(sweep::compareSweeps(a, b, nullptr));

    // An integer counter off by one is.
    b["results"]["perm|D16"]["run"]["instructions"] = Json(int64_t{101});
    std::string diff;
    EXPECT_FALSE(sweep::compareSweeps(a, b, &diff));
    EXPECT_NE(diff.find("instructions"), std::string::npos);

    // A double outside tolerance is too; within tolerance is not.
    b = Json::parse(a.dump());
    b["results"]["perm|D16"]["derived"]["interlockRate"] =
        Json(0.5 + 1e-12);
    EXPECT_TRUE(sweep::compareSweeps(a, b, nullptr));
    b["results"]["perm|D16"]["derived"]["interlockRate"] = Json(0.51);
    EXPECT_FALSE(sweep::compareSweeps(a, b, nullptr));
}

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--update-golden") == 0)
            updateGolden = true;
    return RUN_ALL_TESTS();
}
