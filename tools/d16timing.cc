/**
 * @file
 * d16timing — static pipeline-timing analyzer, cross-validated against
 * the simulator.
 *
 * Compiles workloads for the selected targets, recovers the CFG from
 * each *linked binary*, and runs the abstract-interpretation timing
 * pass (analysis/timing.hh): per-site hazard classification (load-use
 * interlocks, math-unit busy stalls, branch bubbles, fetch-buffer
 * refills), per-block static cycle costs, and loop-aware whole-program
 * best/worst base-cycle bounds. Reports the stall hotspots — the
 * blocks with the highest static stall density — for the D16 and DLXe
 * encodings side by side, plus the scheduler feedback (load-use
 * interlocks the final image retains that an in-block move could have
 * hidden). With --cross-validate every image is also simulated with a
 * per-PC stall probe and the dynamic stalls are checked, exactly,
 * against the static classification.
 *
 *   d16timing                         analyze every workload, both targets
 *   d16timing perm queens             specific workloads
 *   d16timing --isa d16 --opt 0       one target, unoptimized code
 *   d16timing --smoke                 the sweep's smoke matrix (all five
 *                                     paper variants)
 *   d16timing --cross-validate        also simulate + check static vs dynamic
 *   d16timing --notes                 per-site tim-* hazard notes
 *   d16timing --top N                 hotspot rows per unit (default 3)
 *   d16timing --bus N                 fetch-buffer width in bytes (default 4)
 *   d16timing --json                  summaries + diagnostics as JSON
 *   d16timing --jobs N                analysis worker threads
 *
 * Exit status: 0 = clean, 1 = findings reported, 2 = bad usage or
 * build failure.
 */

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/timing.hh"
#include "asm/assembler.hh"
#include "core/sweep/sweep.hh"
#include "core/toolchain.hh"
#include "core/workloads.hh"
#include "mc/compiler.hh"
#include "support/cli.hh"
#include "support/json.hh"
#include "support/table.hh"

namespace
{

using namespace d16sim;

struct Args
{
    std::vector<std::string> workloads;  //!< empty = all
    bool d16 = true;
    bool dlxe = true;
    int optLevel = 2;
    bool smoke = false;
    bool json = false;
    bool crossValidate = false;
    bool notes = false;
    int top = 3;
    int bus = 4;
    int jobs = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
};

/** One (workload, variant) timing unit and everything it produced. */
struct Unit
{
    const core::Workload *workload = nullptr;
    mc::CompileOptions opts;
    std::string name;     //!< "<workload>/<variant>"
    std::string variant;  //!< the variant segment alone

    verify::DiagEngine diags;
    std::unique_ptr<assem::Image> image;
    std::unique_ptr<analysis::ImageCfg> cfg;  //!< timing points into this
    analysis::TimingResult timing;
    mc::SchedFeedback feedback;
    int findings = 0;
    bool built = false;
    bool validated = false;
};

bool
analyzeUnit(Unit &u, const Args &args)
{
    u.diags.setUnit(u.name);
    try {
        mc::CompileResult comp = mc::compile(u.workload->source, u.opts);
        assem::Assembler as(u.opts.target());
        as.add(std::move(comp.items));
        u.image = std::make_unique<assem::Image>(as.link());
        u.cfg = std::make_unique<analysis::ImageCfg>(
            analysis::buildCfg(*u.image));
        analysis::TimingOptions topts;
        topts.busBytes = static_cast<uint32_t>(args.bus);
        topts.siteDiags = args.notes;
        u.timing = analysis::analyzeTiming(*u.cfg, u.diags, topts);
        u.feedback = analysis::schedFeedback(u.timing, u.diags);
        if (args.crossValidate) {
            analysis::StallProbe probe;
            const core::RunMeasurement m = core::run(*u.image, {&probe});
            u.findings += analysis::crossValidateTiming(
                u.timing, probe, m.stats, u.diags);
            u.validated = true;
        }
    } catch (const Error &e) {
        std::fprintf(stderr, "d16timing: %s: build failed: %s\n",
                     u.name.c_str(), e.what());
        return false;
    }
    u.built = true;
    return true;
}

/** Block ids of `u`'s top stall hotspots, densest first. */
std::vector<int>
hotspots(const Unit &u, int top)
{
    std::vector<int> ids;
    for (const analysis::Block &b : u.cfg->blocks)
        if (b.func >= 0 && u.timing.blocks[b.id].stallHi > 0)
            ids.push_back(b.id);
    std::sort(ids.begin(), ids.end(), [&](int a, int b) {
        const auto &ta = u.timing.blocks[a];
        const auto &tb = u.timing.blocks[b];
        // Density descending; ties by total stalls, then block order.
        const uint64_t da = uint64_t{ta.stallHi} * tb.size;
        const uint64_t db = uint64_t{tb.stallHi} * ta.size;
        if (da != db)
            return da > db;
        if (ta.stallHi != tb.stallHi)
            return ta.stallHi > tb.stallHi;
        return a < b;
    });
    if (static_cast<int>(ids.size()) > top)
        ids.resize(top);
    return ids;
}

/** The D16-vs-DLXe side-by-side hotspot table for one workload. */
void
printHotspots(const std::vector<const Unit *> &group, int top,
              std::ostream &os)
{
    Table table({"variant", "block", "insns", "stall lo", "stall hi",
                 "bubbles", "stalls/insn"});
    table.setTitle(group.front()->workload->name + ": stall hotspots");
    for (const Unit *u : group) {
        for (int id : hotspots(*u, top)) {
            const analysis::BlockTiming &bt = u->timing.blocks[id];
            char density[32];
            std::snprintf(density, sizeof density, "%.2f",
                          bt.stallDensity());
            table.addRow({u->variant, u->timing.blockLabel(id),
                          std::to_string(bt.size),
                          std::to_string(bt.stallLo),
                          std::to_string(bt.stallHi),
                          std::to_string(bt.bubbles), density});
        }
    }
    if (table.rowCount())
        table.print(os);
}

Json
unitJson(const Unit &u)
{
    Json j = Json::object();
    j["unit"] = u.name;
    std::ostringstream os;
    u.timing.renderJson(os);
    j["summary"] = Json::parse(os.str());
    Json fb = Json::object();
    fb["residualLoadUse"] = Json(int64_t{u.feedback.loadUseSites});
    fb["avoidableLoadUse"] = Json(int64_t{u.feedback.avoidableSites});
    j["schedFeedback"] = fb;
    Json hot = Json::array();
    for (int id : hotspots(u, 3)) {
        const analysis::BlockTiming &bt = u.timing.blocks[id];
        Json h = Json::object();
        h["block"] = u.timing.blockLabel(id);
        h["insns"] = Json(int64_t{bt.size});
        h["stallLo"] = Json(int64_t{bt.stallLo});
        h["stallHi"] = Json(int64_t{bt.stallHi});
        h["bubbles"] = Json(int64_t{bt.bubbles});
        hot.push(h);
    }
    j["hotspots"] = hot;
    std::ostringstream ds;
    u.diags.renderJson(ds);
    j["diags"] = Json::parse(ds.str());
    j["crossValidated"] = u.validated;
    return j;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args;
    cli::Cli parser(
        "d16timing",
        "[--isa d16|dlxe|both] [--opt 0|1|2] [--smoke]\n"
        "       [--cross-validate] [--notes] [--top N] [--bus N]\n"
        "       [--json] [--jobs N] [--list] [workload...]");
    parser.value("--isa", [&](const std::string &v) {
        args.d16 = v == "d16" || v == "both";
        args.dlxe = v == "dlxe" || v == "both";
        return args.d16 || args.dlxe;
    });
    parser.intValue("--opt", &args.optLevel);
    parser.flag("--smoke", &args.smoke);
    parser.flag("--json", &args.json);
    parser.flag("--cross-validate", &args.crossValidate);
    parser.flag("--notes", &args.notes);
    parser.intValue("--top", &args.top);
    parser.intValue("--bus", &args.bus);
    parser.intValue("--jobs", &args.jobs);
    parser.flag("--list", [] {
        for (const core::Workload &w : core::workloadSuite())
            std::printf("%s\n", w.name.c_str());
        std::exit(0);
    });
    parser.positionals(&args.workloads);
    switch (parser.parse(argc, argv)) {
      case cli::CliStatus::Help: return 0;
      case cli::CliStatus::Error: return 2;
      case cli::CliStatus::Ok: break;
    }
    args.jobs = std::max(1, args.jobs);
    args.top = std::max(1, args.top);
    if (args.bus < 4 || (args.bus & (args.bus - 1)) != 0) {
        std::fprintf(stderr,
                     "d16timing: --bus must be a power of two >= 4\n");
        return 2;
    }

    std::vector<std::unique_ptr<Unit>> units;
    try {
        auto wanted = [&](const std::string &name) {
            return args.workloads.empty() ||
                   std::find(args.workloads.begin(), args.workloads.end(),
                             name) != args.workloads.end();
        };
        for (const std::string &name : args.workloads)
            core::workload(name);  // validate up front
        if (args.smoke) {
            for (core::sweep::JobSpec &j : core::sweep::smokeBaseMatrix()) {
                if (!wanted(j.workload))
                    continue;
                auto u = std::make_unique<Unit>();
                u->workload = &core::workload(j.workload);
                u->opts = j.opts;
                u->variant = core::sweep::variantKey(j.opts);
                u->name = j.workload + "/" + u->variant;
                units.push_back(std::move(u));
            }
        } else {
            for (const core::Workload &w : core::workloadSuite()) {
                if (!wanted(w.name))
                    continue;
                for (auto opts : {mc::CompileOptions::d16(),
                                  mc::CompileOptions::dlxe()}) {
                    if (opts.isa == isa::IsaKind::D16 ? !args.d16
                                                      : !args.dlxe)
                        continue;
                    opts.optLevel = args.optLevel;
                    auto u = std::make_unique<Unit>();
                    u->workload = &w;
                    u->opts = opts;
                    u->variant = core::sweep::variantKey(opts);
                    u->name = w.name + "/" + u->variant;
                    units.push_back(std::move(u));
                }
            }
        }
    } catch (const Error &e) {
        std::fprintf(stderr, "d16timing: %s\n", e.what());
        return 2;
    }

    // Analyze in parallel; report in deterministic unit order below.
    std::atomic<size_t> next{0};
    std::atomic<bool> buildFailed{false};
    auto worker = [&] {
        for (size_t i = next.fetch_add(1); i < units.size();
             i = next.fetch_add(1)) {
            if (!analyzeUnit(*units[i], args))
                buildFailed = true;
        }
    };
    std::vector<std::thread> pool;
    const int threads =
        std::min<size_t>(args.jobs, units.size() ? units.size() : 1);
    for (int t = 1; t < threads; ++t)
        pool.emplace_back(worker);
    worker();
    for (std::thread &t : pool)
        t.join();

    int errors = 0, warnings = 0, notes = 0, findings = 0;
    if (args.json) {
        Json doc = Json::array();
        for (const auto &u : units)
            if (u->built)
                doc.push(unitJson(*u));
        std::cout << doc.dump(2) << "\n";
    } else {
        // Per-unit summaries, then the per-workload side-by-side
        // hotspot tables (the units of one workload are adjacent by
        // construction in both matrix orders).
        for (const auto &u : units) {
            if (!u->built)
                continue;
            std::printf("%s:%s\n", u->name.c_str(),
                        u->validated ? " (cross-validated)" : "");
            std::ostringstream os;
            u->timing.renderText(os);
            os << "  scheduler feedback: " << u->feedback.loadUseSites
               << " residual load-use interlock(s), "
               << u->feedback.avoidableSites << " avoidable\n";
            std::fputs(os.str().c_str(), stdout);
            u->diags.renderText(std::cout);
        }
        std::vector<const Unit *> group;
        for (const auto &u : units) {
            if (u->built && !group.empty() &&
                group.back()->workload != u->workload) {
                printHotspots(group, args.top, std::cout);
                group.clear();
            }
            if (u->built)
                group.push_back(u.get());
        }
        if (!group.empty())
            printHotspots(group, args.top, std::cout);
    }
    for (const auto &u : units) {
        errors += u->diags.errors();
        warnings += u->diags.warnings();
        notes += u->diags.notes();
        findings += u->findings + u->diags.failures();
    }
    std::fprintf(
        stderr,
        "d16timing: %zu units, %d errors, %d warnings, %d notes%s\n",
        units.size(), errors, warnings, notes,
        args.crossValidate ? " (cross-validated)" : "");

    if (buildFailed)
        return 2;
    return findings ? 1 : 0;
}
