/**
 * @file
 * d16sweep — run the experiment matrix on the parallel sweep engine.
 *
 * Executes the deduplicated (workload x variant x memory-config) job
 * graph behind the paper's figures on a fixed-size thread pool and
 * emits every raw metric the §4 formulas consume as canonical JSON.
 *
 *   d16sweep --jobs 8                      full matrix, 8 workers
 *   d16sweep --smoke                       golden-regression matrix
 *   d16sweep --workloads perm,queens       filter by workload
 *   d16sweep --variants D16,DLXe/32/3      filter by variant key
 *   d16sweep --json sweep.json             write the document (- = stdout)
 *   d16sweep --no-timing                   byte-comparable output only
 *   d16sweep --no-replay                   re-simulate every job (A/B
 *                                          check of the trace-replay path)
 *   d16sweep --no-block-engine             dispatch per instruction (A/B
 *                                          check of the block engine)
 *   d16sweep --golden FILE                 compare against a golden file
 *   d16sweep --list                        print the selected job keys
 *
 * The results section is canonical (sorted keys, counters only, no
 * timestamps): two runs over the same matrix produce byte-identical
 * JSON whatever --jobs is, which is what the golden regression suite
 * (tests/sweep_test.cc, tests/golden/sweep_golden.json) pins. Timing
 * lives in a separate "timing" section (dropped by --no-timing) and
 * in the stderr summary; its speedup line — busy seconds over wall
 * seconds — is the engine's own parallelism measurement.
 *
 * Exit status: 0 = swept (and matched the golden file, if given),
 * 1 = golden mismatch, 2 = bad usage or build failure.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/sweep/sweep.hh"
#include "core/workloads.hh"
#include "support/cli.hh"
#include "support/error.hh"

namespace
{

using namespace d16sim;
using namespace d16sim::core;

struct Args
{
    int jobs = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
    bool smoke = false;
    bool timing = true;
    bool replay = true;
    bool blockEngine = true;
    bool list = false;
    std::vector<std::string> workloads;  //!< empty = all
    std::vector<std::string> variants;   //!< empty = all
    std::string jsonPath;                //!< empty = no JSON output
    std::string goldenPath;              //!< empty = no comparison
};

/** Keep only jobs matching the workload/variant filters. */
std::vector<sweep::JobSpec>
filtered(std::vector<sweep::JobSpec> jobs, const Args &args)
{
    if (!args.workloads.empty()) {
        // Validate the names up front for a friendly error.
        for (const std::string &name : args.workloads)
            workload(name);
    }
    // Normalize variant filters through the parser so "dlxe/32/3"
    // matches "DLXe/32/3".
    std::set<std::string> variantKeys;
    for (const std::string &v : args.variants)
        variantKeys.insert(sweep::variantKey(sweep::parseVariant(v)));

    std::vector<sweep::JobSpec> out;
    for (sweep::JobSpec &j : jobs) {
        if (!args.workloads.empty() &&
            std::find(args.workloads.begin(), args.workloads.end(),
                      j.workload) == args.workloads.end())
            continue;
        if (!variantKeys.empty() &&
            !variantKeys.count(sweep::variantKey(j.opts)))
            continue;
        out.push_back(std::move(j));
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args;
    cli::Cli parser("d16sweep",
                    "[--jobs N] [--smoke] [--workloads a,b,...]\n"
                    "       [--variants D16,DLXe/32/3,...] [--json FILE|-]\n"
                    "       [--no-timing] [--no-replay] [--no-block-engine]\n"
                    "       [--golden FILE] [--list]");
    parser.value("--jobs", [&](const std::string &v) {
        args.jobs = std::max(1, std::atoi(v.c_str()));
        return true;
    });
    parser.flag("--smoke", &args.smoke);
    parser.value("--workloads", [&](const std::string &v) {
        args.workloads = cli::csvList(v);
        return true;
    });
    parser.value("--variants", [&](const std::string &v) {
        args.variants = cli::csvList(v);
        return true;
    });
    parser.stringValue("--json", &args.jsonPath);
    parser.flag("--no-timing", [&] { args.timing = false; });
    parser.flag("--no-replay", [&] { args.replay = false; });
    parser.flag("--no-block-engine", [&] { args.blockEngine = false; });
    parser.stringValue("--golden", &args.goldenPath);
    parser.flag("--list", &args.list);
    switch (parser.parse(argc, argv)) {
      case cli::CliStatus::Help: return 0;
      case cli::CliStatus::Error: return 2;
      case cli::CliStatus::Ok: break;
    }

    try {
        std::vector<sweep::JobSpec> jobs = filtered(
            args.smoke ? sweep::smokeMatrix() : sweep::fullMatrix(), args);
        if (args.list) {
            std::set<std::string> keys;
            for (const sweep::JobSpec &j : jobs)
                keys.insert(sweep::jobKey(j));
            for (const std::string &k : keys)
                std::printf("%s\n", k.c_str());
            return 0;
        }

        sweep::ResultStore store;
        sweep::SweepEngine engine(store, args.jobs);
        engine.setReplay(args.replay);
        engine.setBlockEngine(args.blockEngine);
        engine.add(std::move(jobs));
        engine.run();

        const sweep::SweepTiming &t = engine.timing();
        std::fprintf(stderr,
                     "d16sweep: %d runs (%d builds, %d deduped, %d "
                     "replayed from %d traces) on %d threads\n"
                     "d16sweep: wall %.2fs, busy %.2fs (build %.2fs + "
                     "simulate %.2fs + replay %.2fs), speedup %.2fx\n"
                     "d16sweep: %llu instructions simulated, %.1f MIPS\n",
                     t.executedRuns, t.executedBuilds, t.dedupedRuns,
                     t.replayedRuns, t.capturedTraces, t.threads,
                     t.wallSeconds, t.busySeconds(), t.buildSeconds,
                     t.simulateSeconds, t.replaySeconds, t.speedup(),
                     static_cast<unsigned long long>(
                         t.simulatedInstructions),
                     t.simMips());

        const Json doc =
            sweep::sweepJson(store, args.timing ? &t : nullptr);
        if (!args.jsonPath.empty()) {
            if (args.jsonPath == "-") {
                std::cout << doc.dump(2) << "\n";
            } else {
                std::ofstream out(args.jsonPath);
                if (!out)
                    fatal("cannot write ", args.jsonPath);
                out << doc.dump(2) << "\n";
                std::fprintf(stderr, "d16sweep: wrote %s (%zu jobs)\n",
                             args.jsonPath.c_str(), store.size());
            }
        }

        if (!args.goldenPath.empty()) {
            std::ifstream in(args.goldenPath);
            if (!in)
                fatal("cannot read ", args.goldenPath);
            std::ostringstream text;
            text << in.rdbuf();
            const Json golden = Json::parse(text.str());
            std::string diff;
            if (!sweep::compareSweeps(doc, golden, &diff)) {
                std::fprintf(stderr,
                             "d16sweep: golden mismatch vs %s:\n%s",
                             args.goldenPath.c_str(), diff.c_str());
                return 1;
            }
            std::fprintf(stderr, "d16sweep: matches golden %s\n",
                         args.goldenPath.c_str());
        }
    } catch (const Error &e) {
        std::fprintf(stderr, "d16sweep: %s\n", e.what());
        return 2;
    }
    return 0;
}
