/**
 * @file
 * d16fuzz — differential fuzzer: MiniC reference interpreter vs the
 * full toolchain (compile + assemble + link + simulate) on all five
 * machine variants at opt levels 0-2.
 *
 *   d16fuzz                          200 seeds, all cores
 *   d16fuzz --seeds N                fuzz N seeds
 *   d16fuzz --seed-base B            first seed (default 1)
 *   d16fuzz --jobs N                 worker threads
 *   d16fuzz --corpus DIR             first replay every *.c in DIR as a
 *                                    regression gate — each program must
 *                                    agree across the oracle and all
 *                                    variants AND its dynamically
 *                                    observed block graph must be a
 *                                    subset of the statically recovered
 *                                    CFG — then fuzz; with --minimize,
 *                                    newly found divergent programs are
 *                                    written there
 *   d16fuzz --minimize               shrink each divergence before
 *                                    reporting it
 *   d16fuzz --dump SEED              print the program for one seed
 *
 * Exit status: 0 = zero divergences (and corpus replays green),
 * 1 = divergence or corpus failure, 2 = bad usage.
 */

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/xvalidate.hh"
#include "core/toolchain.hh"
#include "fuzz/fuzz.hh"
#include "mc/compiler.hh"
#include "support/cli.hh"

namespace
{

using namespace d16sim;

struct Args
{
    int seeds = 200;
    int seedBase = 1;
    int jobs = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
    bool minimize = false;
    std::string corpus;
    int dumpSeed = -1;
};

struct Finding
{
    uint64_t seed = 0;
    std::string source;
    fuzz::DiffOutcome outcome;
};

/** Static-CFG gate for one corpus program: on both base targets, the
 *  dynamically observed basic blocks and transfers must be a subset
 *  of the statically recovered CFG (exact cross-validation). Build or
 *  run limits are the differential harness's concern, not this
 *  gate's, so they are skipped silently here. */
int
cfgGate(const std::string &source, const std::string &name)
{
    int failures = 0;
    for (const auto &opts :
         {mc::CompileOptions::d16(), mc::CompileOptions::dlxe()}) {
        try {
            const assem::Image img = core::build(source, opts);
            const analysis::ImageCfg cfg = analysis::buildCfg(img);
            analysis::ExecProbe probe(opts.target().insnBytes());
            const core::RunMeasurement m = core::run(img, {&probe});
            verify::DiagEngine diags;
            diags.setUnit(name + "/" + opts.name());
            if (analysis::crossValidate(cfg, probe, m.stats, diags)) {
                ++failures;
                std::ostringstream os;
                diags.renderText(os);
                std::printf("corpus %-32s CFG GATE FAILED (%s)\n%s",
                            name.c_str(), opts.name().c_str(),
                            os.str().c_str());
            }
        } catch (const Error &) {
            // Didn't build or hit a run limit under these options.
        }
    }
    return failures;
}

/** Replay every checked-in reproducer; each must agree now. */
int
replayCorpus(const std::string &dir)
{
    namespace fs = std::filesystem;
    if (!fs::is_directory(dir)) {
        std::fprintf(stderr, "d16fuzz: corpus directory %s not found\n",
                      dir.c_str());
        return 1;
    }
    std::vector<fs::path> files;
    for (const auto &entry : fs::directory_iterator(dir))
        if (entry.path().extension() == ".c")
            files.push_back(entry.path());
    std::sort(files.begin(), files.end());

    int failures = 0;
    for (const fs::path &path : files) {
        std::ifstream in(path);
        std::stringstream ss;
        ss << in.rdbuf();
        const fuzz::DiffOutcome out = fuzz::runDifferential(ss.str());
        if (out.kind == fuzz::DiffKind::Agree) {
            const int cfgBad =
                cfgGate(ss.str(), path.filename().string());
            failures += cfgBad;
            if (!cfgBad)
                std::printf("corpus %-32s ok\n",
                            path.filename().c_str());
        } else {
            ++failures;
            std::printf("corpus %-32s FAILED\n  %s\n",
                        path.filename().c_str(),
                        out.detail.c_str());
        }
    }
    std::printf("corpus: %zu programs, %d failing\n", files.size(),
                failures);
    return failures ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args;
    cli::Cli cli("d16fuzz",
                 "[--seeds N] [--seed-base B] [--jobs N] [--minimize] "
                 "[--corpus DIR] [--dump SEED]");
    cli.intValue("--seeds", &args.seeds);
    cli.intValue("--seed-base", &args.seedBase);
    cli.intValue("--jobs", &args.jobs);
    cli.flag("--minimize", &args.minimize);
    cli.stringValue("--corpus", &args.corpus);
    cli.intValue("--dump", &args.dumpSeed);
    switch (cli.parse(argc, argv)) {
      case cli::CliStatus::Ok: break;
      case cli::CliStatus::Help: return 0;
      case cli::CliStatus::Error: return 2;
    }

    if (args.dumpSeed >= 0) {
        std::fputs(fuzz::generateProgram(
                       static_cast<uint64_t>(args.dumpSeed))
                       .c_str(),
                   stdout);
        return 0;
    }

    int status = 0;
    if (!args.corpus.empty())
        status = replayCorpus(args.corpus);

    if (args.seeds > 0) {
        std::atomic<int> nextIndex{0};
        std::atomic<int> agreeCount{0};
        std::atomic<int> skipCount{0};
        std::mutex mu;
        std::vector<Finding> findings;

        auto worker = [&] {
            for (;;) {
                const int i = nextIndex.fetch_add(1);
                if (i >= args.seeds)
                    return;
                const uint64_t seed =
                    static_cast<uint64_t>(args.seedBase) +
                    static_cast<uint64_t>(i);
                const std::string src = fuzz::generateProgram(seed);
                const fuzz::DiffOutcome out =
                    fuzz::runDifferential(src);
                switch (out.kind) {
                  case fuzz::DiffKind::Agree:
                    agreeCount.fetch_add(1);
                    break;
                  case fuzz::DiffKind::Skip:
                    skipCount.fetch_add(1);
                    break;
                  case fuzz::DiffKind::Divergence: {
                    std::lock_guard<std::mutex> lock(mu);
                    findings.push_back({seed, src, out});
                    break;
                  }
                }
            }
        };
        std::vector<std::thread> pool;
        const int n = std::max(1, std::min(args.jobs, args.seeds));
        pool.reserve(static_cast<size_t>(n));
        for (int i = 0; i < n; ++i)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();

        std::sort(findings.begin(), findings.end(),
                  [](const Finding &a, const Finding &b) {
                      return a.seed < b.seed;
                  });
        for (Finding &f : findings) {
            std::printf("seed %llu DIVERGED\n  %s\n",
                        static_cast<unsigned long long>(f.seed),
                        f.outcome.detail.c_str());
            std::string repro = f.source;
            if (args.minimize) {
                repro = fuzz::minimizeLines(
                    repro, fuzz::divergenceReproduces);
                std::printf("  minimized to %d lines\n",
                            static_cast<int>(std::count(
                                repro.begin(), repro.end(), '\n')));
            }
            if (!args.corpus.empty()) {
                const std::string path =
                    args.corpus + "/seed_" + std::to_string(f.seed) +
                    ".c";
                std::ofstream outFile(path);
                outFile << repro;
                std::printf("  wrote %s\n", path.c_str());
            } else if (args.minimize) {
                std::printf("---- reproducer ----\n%s"
                            "--------------------\n",
                            repro.c_str());
            }
        }
        std::printf(
            "fuzz: %d seeds, %d agree, %d skipped, %d divergent\n",
            args.seeds, agreeCount.load(), skipCount.load(),
            static_cast<int>(findings.size()));
        if (!findings.empty())
            status = 1;
    }
    return status;
}
