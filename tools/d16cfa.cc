/**
 * @file
 * d16cfa — whole-program binary CFG analyzer.
 *
 * Compiles workloads for the selected targets, recovers the
 * control-flow and call graphs from the *linked binaries*, and runs
 * every static pass (dominators/loops, unreachable code, register
 * dataflow, stack bounds, code-density accounting) over them.
 * Optionally re-runs each image in the simulator and cross-validates
 * the static analysis against the dynamic execution profile, exactly.
 *
 *   d16cfa                          analyze every workload, both targets
 *   d16cfa perm queens              specific workloads
 *   d16cfa --isa d16 --opt 0        one target, unoptimized code
 *   d16cfa --smoke                  the sweep's smoke matrix (all five
 *                                   paper variants incl. restricted DLXe)
 *   d16cfa --cross-validate         also simulate + check static vs dynamic
 *   d16cfa --json                   diagnostics + summaries as JSON
 *   d16cfa --cfg out.dot perm       CFG DOT export (one workload/target)
 *   d16cfa --calls out.dot perm     call-graph DOT export
 *   d16cfa --jobs N                 analysis worker threads
 *
 * Exit status: 0 = clean, 1 = findings reported, 2 = bad usage or
 * build failure.
 */

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/analysis.hh"
#include "analysis/dot.hh"
#include "analysis/xvalidate.hh"
#include "asm/assembler.hh"
#include "core/sweep/sweep.hh"
#include "core/toolchain.hh"
#include "core/workloads.hh"
#include "mc/compiler.hh"
#include "support/cli.hh"
#include "support/json.hh"

namespace
{

using namespace d16sim;

struct Args
{
    std::vector<std::string> workloads;  //!< empty = all
    bool d16 = true;
    bool dlxe = true;
    int optLevel = 2;
    bool smoke = false;
    bool json = false;
    bool crossValidate = false;
    std::string cfgDot;    //!< write CFG DOT here ("-" = stdout)
    std::string callsDot;  //!< write call-graph DOT here
    int jobs = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
};

/** One (workload, variant) analysis unit and everything it produced. */
struct Unit
{
    const core::Workload *workload = nullptr;
    mc::CompileOptions opts;
    std::string name;  //!< "<workload>/<variant>"

    verify::DiagEngine diags;
    analysis::AnalysisResult result;
    std::unique_ptr<assem::Image> image;  //!< cfg points into this
    bool built = false;
    bool validated = false;  //!< cross-validation ran
};

/** Build + analyze (+ optionally simulate and cross-validate) one
 *  unit. Returns false on a build failure. */
bool
analyzeUnit(Unit &u, const Args &args)
{
    u.diags.setUnit(u.name);
    try {
        const mc::CompileOptions &opts = u.opts;
        mc::CompileResult comp = mc::compile(u.workload->source, opts);
        assem::Assembler as(opts.target());
        as.add(std::move(comp.items));
        u.image = std::make_unique<assem::Image>(as.link());
        u.result = analysis::analyzeImage(*u.image, u.diags,
                                          analysis::Abi::from(opts));
        if (args.crossValidate) {
            // The instruction width arms dynamic-edge recording: the
            // observed block graph must be a subset of the static CFG.
            analysis::ExecProbe probe(opts.target().insnBytes());
            const core::RunMeasurement m = core::run(*u.image, {&probe});
            u.result.findings += analysis::crossValidate(
                u.result.cfg, probe, m.stats, u.diags);
            u.validated = true;
        }
    } catch (const Error &e) {
        std::fprintf(stderr, "d16cfa: %s: build failed: %s\n",
                     u.name.c_str(), e.what());
        return false;
    }
    u.built = true;
    return true;
}

Json
unitJson(const Unit &u)
{
    Json j = Json::object();
    j["unit"] = u.name;
    std::ostringstream os;
    u.result.renderJson(os);
    j["summary"] = Json::parse(os.str());
    Json diags = Json::array();
    std::ostringstream ds;
    u.diags.renderJson(ds);
    j["diags"] = Json::parse(ds.str());
    j["crossValidated"] = u.validated;
    return j;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args;
    cli::Cli parser(
        "d16cfa",
        "[--isa d16|dlxe|both] [--opt 0|1|2] [--smoke]\n"
        "       [--cross-validate] [--json] [--cfg FILE|-] "
        "[--calls FILE|-]\n"
        "       [--jobs N] [--list] [workload...]");
    parser.value("--isa", [&](const std::string &v) {
        args.d16 = v == "d16" || v == "both";
        args.dlxe = v == "dlxe" || v == "both";
        return args.d16 || args.dlxe;
    });
    parser.intValue("--opt", &args.optLevel);
    parser.flag("--smoke", &args.smoke);
    parser.flag("--json", &args.json);
    parser.flag("--cross-validate", &args.crossValidate);
    parser.stringValue("--cfg", &args.cfgDot);
    parser.stringValue("--calls", &args.callsDot);
    parser.intValue("--jobs", &args.jobs);
    parser.flag("--list", [] {
        for (const core::Workload &w : core::workloadSuite())
            std::printf("%s\n", w.name.c_str());
        std::exit(0);
    });
    parser.positionals(&args.workloads);
    switch (parser.parse(argc, argv)) {
      case cli::CliStatus::Help: return 0;
      case cli::CliStatus::Error: return 2;
      case cli::CliStatus::Ok: break;
    }
    args.jobs = std::max(1, args.jobs);

    std::vector<std::unique_ptr<Unit>> units;
    try {
        auto wanted = [&](const std::string &name) {
            return args.workloads.empty() ||
                   std::find(args.workloads.begin(), args.workloads.end(),
                             name) != args.workloads.end();
        };
        for (const std::string &name : args.workloads)
            core::workload(name);  // validate up front
        if (args.smoke) {
            // The golden-regression matrix: every workload under all
            // five paper variants, at each variant's own settings.
            for (core::sweep::JobSpec &j : core::sweep::smokeBaseMatrix()) {
                if (!wanted(j.workload))
                    continue;
                auto u = std::make_unique<Unit>();
                u->workload = &core::workload(j.workload);
                u->opts = j.opts;
                u->name =
                    j.workload + "/" + core::sweep::variantKey(j.opts);
                units.push_back(std::move(u));
            }
        } else {
            for (const core::Workload &w : core::workloadSuite()) {
                if (!wanted(w.name))
                    continue;
                for (auto opts : {mc::CompileOptions::d16(),
                                  mc::CompileOptions::dlxe()}) {
                    if (opts.isa == isa::IsaKind::D16 ? !args.d16
                                                      : !args.dlxe)
                        continue;
                    opts.optLevel = args.optLevel;
                    auto u = std::make_unique<Unit>();
                    u->workload = &w;
                    u->opts = opts;
                    u->name = w.name + "/" + opts.name();
                    units.push_back(std::move(u));
                }
            }
        }
    } catch (const Error &e) {
        std::fprintf(stderr, "d16cfa: %s\n", e.what());
        return 2;
    }

    if ((!args.cfgDot.empty() || !args.callsDot.empty()) &&
        units.size() != 1) {
        std::fprintf(stderr,
                     "d16cfa: --cfg/--calls need exactly one unit "
                     "(got %zu): name one workload and one --isa\n",
                     units.size());
        return 2;
    }

    // Analyze in parallel; report in deterministic unit order below.
    std::atomic<size_t> next{0};
    std::atomic<bool> buildFailed{false};
    auto worker = [&] {
        for (size_t i = next.fetch_add(1); i < units.size();
             i = next.fetch_add(1)) {
            if (!analyzeUnit(*units[i], args))
                buildFailed = true;
        }
    };
    std::vector<std::thread> pool;
    const int threads =
        std::min<size_t>(args.jobs, units.size() ? units.size() : 1);
    for (int t = 1; t < threads; ++t)
        pool.emplace_back(worker);
    worker();
    for (std::thread &t : pool)
        t.join();

    // DOT export (single unit by construction).
    if (!args.cfgDot.empty() || !args.callsDot.empty()) {
        const Unit &u = *units[0];
        if (!u.built)
            return 2;
        auto dump = [&](const std::string &path, auto writer) {
            if (path.empty())
                return true;
            if (path == "-") {
                writer(u.result.cfg, std::cout);
                return true;
            }
            std::ofstream out(path);
            if (!out) {
                std::fprintf(stderr, "d16cfa: cannot write %s\n",
                             path.c_str());
                return false;
            }
            writer(u.result.cfg, out);
            return true;
        };
        if (!dump(args.cfgDot, analysis::writeCfgDot) ||
            !dump(args.callsDot, analysis::writeCallGraphDot))
            return 2;
    }

    int errors = 0, warnings = 0, notes = 0, findings = 0;
    if (args.json) {
        Json doc = Json::array();
        for (const auto &u : units)
            if (u->built)
                doc.push(unitJson(*u));
        std::cout << doc.dump(2) << "\n";
    } else {
        for (const auto &u : units) {
            if (!u->built)
                continue;
            std::printf("%s:%s\n", u->name.c_str(),
                        u->validated ? " (cross-validated)" : "");
            std::ostringstream os;
            u->result.renderText(os);
            std::fputs(os.str().c_str(), stdout);
            u->diags.renderText(std::cout);
        }
    }
    for (const auto &u : units) {
        errors += u->diags.errors();
        warnings += u->diags.warnings();
        notes += u->diags.notes();
        findings += u->diags.failures();
    }
    std::fprintf(stderr,
                 "d16cfa: %zu units, %d errors, %d warnings, %d notes%s\n",
                 units.size(), errors, warnings, notes,
                 args.crossValidate ? " (cross-validated)" : "");

    if (buildFailed)
        return 2;
    return findings ? 1 : 0;
}
