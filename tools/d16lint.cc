/**
 * @file
 * d16lint — run the toolchain verification layer from the command line.
 *
 * Compiles workloads for the selected targets with the IR verifier
 * hooked into every pipeline stage, links them, and runs the
 * machine-code linter over the images. Diagnostics go to stdout as
 * text, or as JSON (--json) for CI diffing.
 *
 *   d16lint                      lint every workload, both targets
 *   d16lint perm queens          lint specific workloads
 *   d16lint --isa d16 --opt 0    one target, unoptimized code
 *   d16lint --verify-each        verify after every optimization pass
 *   d16lint --cfg                also run the binary CFG analyzer
 *   d16lint --perf               include load-use interlock notes
 *
 * Exit status: 0 = clean, 1 = diagnostics reported, 2 = build failure.
 */

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/analysis.hh"
#include "asm/assembler.hh"
#include "core/workloads.hh"
#include "mc/compiler.hh"
#include "support/cli.hh"
#include "support/error.hh"
#include "verify/verify.hh"

namespace
{

using namespace d16sim;

struct Args
{
    std::vector<std::string> workloads;  //!< empty = all
    bool d16 = true;
    bool dlxe = true;
    int optLevel = 2;
    bool verifyEach = false;
    bool json = false;
    bool perf = false;
    bool cfg = false;
};

/** Compile + link one workload for one variant, collecting diagnostics
 *  instead of throwing. Returns false on a build failure. */
bool
lintOne(const core::Workload &w, mc::CompileOptions opts, const Args &args,
        verify::DiagEngine &diags)
{
    opts.optLevel = args.optLevel;
    opts.verifyEach = args.verifyEach;
    opts.verifyHook = [&diags](const mc::IrFunction &fn, const char *stage,
                               const mc::MachineEnv *env) {
        verify::IrVerifyOptions vo;
        vo.env = env;
        vo.stage = stage;
        verify::verifyIr(fn, diags, vo);
    };
    diags.setUnit(w.name + "/" + opts.name());

    try {
        mc::CompileResult comp = mc::compile(w.source, opts);
        assem::Assembler as(opts.target());
        as.add(std::move(comp.items));
        const assem::Image img = as.link();
        verify::LintOptions lo;
        lo.perfNotes = args.perf;
        verify::lintImage(img, diags, lo);
        if (args.cfg)
            analysis::analyzeImage(img, diags,
                                   analysis::Abi::from(opts));
    } catch (const Error &e) {
        std::fprintf(stderr, "d16lint: %s/%s: build failed: %s\n",
                     w.name.c_str(), opts.name().c_str(), e.what());
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args;
    cli::Cli parser("d16lint",
                    "[--isa d16|dlxe|both] [--opt 0|1|2] [--verify-each]\n"
                    "       [--cfg] [--perf] [--json] [--list] "
                    "[workload...]");
    parser.value("--isa", [&](const std::string &v) {
        args.d16 = v == "d16" || v == "both";
        args.dlxe = v == "dlxe" || v == "both";
        return args.d16 || args.dlxe;
    });
    parser.intValue("--opt", &args.optLevel);
    parser.flag("--verify-each", &args.verifyEach);
    parser.flag("--json", &args.json);
    parser.flag("--perf", &args.perf);
    parser.flag("--cfg", &args.cfg);
    parser.flag("--list", [] {
        for (const core::Workload &w : core::workloadSuite())
            std::printf("%s\n", w.name.c_str());
        std::exit(0);
    });
    parser.positionals(&args.workloads);
    switch (parser.parse(argc, argv)) {
      case cli::CliStatus::Help: return 0;
      case cli::CliStatus::Error: return 2;
      case cli::CliStatus::Ok: break;
    }

    std::vector<const core::Workload *> suite;
    try {
        if (args.workloads.empty()) {
            for (const core::Workload &w : core::workloadSuite())
                suite.push_back(&w);
        } else {
            for (const std::string &name : args.workloads)
                suite.push_back(&core::workload(name));
        }
    } catch (const Error &e) {
        std::fprintf(stderr, "d16lint: %s\n", e.what());
        return 2;
    }

    verify::DiagEngine diags;
    bool buildFailed = false;
    int units = 0;
    for (const core::Workload *w : suite) {
        if (args.d16) {
            ++units;
            buildFailed |=
                !lintOne(*w, mc::CompileOptions::d16(), args, diags);
        }
        if (args.dlxe) {
            ++units;
            buildFailed |=
                !lintOne(*w, mc::CompileOptions::dlxe(), args, diags);
        }
    }

    if (args.json)
        diags.renderJson(std::cout);
    else
        diags.renderText(std::cout);

    if (!args.json) {
        std::fprintf(stderr,
                     "d16lint: %d units, %d errors, %d warnings, "
                     "%d notes\n",
                     units, diags.errors(), diags.warnings(),
                     diags.notes());
    }
    if (buildFailed)
        return 2;
    return diags.failures() ? 1 : 0;
}
